// ServingRuntime: long-running ingest that publishes queryable snapshots.
//
// The one-shot drivers (CLI estimate/report, bench passes) drain a stream
// and finalize once. A serving instance instead folds the stream in
// SEGMENTS of `snapshot_every_edges` edges and publishes an immutable
// CoverageSnapshot into a SnapshotStore at every segment boundary, so
// reader threads can answer queries the whole time the stream is still
// arriving. Two ingest modes share that loop:
//
//   * inline (threads == 0): the calling thread batches + prefolds edges
//     straight into the cumulative ServingState — the single-core path;
//   * sharded (threads >= 1): each segment is one ShardedPipeline run over
//     a bounded view of the stream; the segment's merged state is folded
//     into the cumulative state with Merge(). Replaying the pipeline per
//     segment reuses its entire degradation machinery (retry/backoff,
//     worker-death quarantine, fingerprint votes) unchanged, and the
//     quarantined fraction accumulates into every later snapshot's
//     staleness metadata.
//
// Both modes produce the same cumulative state as one uninterrupted pass on
// the same seeds (segment merges are exact for every streamkc estimator),
// which is what makes the serving answers differentially testable: the
// snapshot at epoch E equals finalizing an inline pass over the first
// E * snapshot_every_edges edges (tests/serve_runtime_test.cc).
//
// Threading contract: Ingest() blocks and must run on ONE thread; queries
// go through SnapshotStore/QueryEngine from any other threads concurrently.

#ifndef STREAMKC_SERVE_SERVING_RUNTIME_H_
#define STREAMKC_SERVE_SERVING_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "runtime/shard_router.h"
#include "runtime/sharded_pipeline.h"
#include "serve/serving_state.h"
#include "serve/snapshot_store.h"
#include "stream/edge_stream.h"

namespace streamkc {

// A bounded forward view over another stream: yields at most `limit` edges,
// then reports a clean end of stream; Rearm() starts the next segment.
// Errors and transient-ness pass through untouched, so the pipeline's
// retry/degradation policy behaves identically under the cap.
class BoundedEdgeStream : public EdgeStream {
 public:
  BoundedEdgeStream(EdgeStream* inner, uint64_t limit)
      : inner_(inner), remaining_(limit), limit_(limit) {}

  bool Next(Edge* edge) override {
    if (remaining_ == 0) return false;
    if (!inner_->Next(edge)) return false;
    --remaining_;
    return true;
  }

  size_t NextBatch(std::vector<Edge>* out, size_t max_edges) override {
    if (remaining_ == 0) {
      out->clear();
      return 0;
    }
    size_t cap = max_edges < remaining_ ? max_edges
                                        : static_cast<size_t>(remaining_);
    size_t got = inner_->NextBatch(out, cap);
    remaining_ -= got;
    return got;
  }

  // Resets the cap for the next segment (does NOT rewind the inner stream).
  void Rearm() { remaining_ = limit_; }
  uint64_t remaining() const { return remaining_; }

  void Reset() override { Rearm(); }
  bool ok() const override { return inner_->ok(); }
  bool transient() const override { return inner_->transient(); }
  std::string StatusMessage() const override {
    return inner_->StatusMessage();
  }

 private:
  EdgeStream* inner_;
  uint64_t remaining_;
  uint64_t limit_;
};

struct ServingRuntimeOptions {
  // Snapshot cadence: edges per ingest segment. Large values amortize the
  // publish cost (finalize + serialize) to noise; small values tighten
  // staleness. Must be >= 1.
  uint64_t snapshot_every_edges = 1 << 18;
  // 0 = inline single-threaded ingest; N >= 1 = N-shard pipeline segments.
  uint32_t threads = 0;
  size_t batch_size = 4096;
  PartitionPolicy policy = PartitionPolicy::kByElement;
  // nullptr = the process-wide registry.
  MetricsRegistry* registry = nullptr;
  // Fault injection for sharded segments (nullptr = none); inline mode has
  // no pipeline to inject into, so drivers must pair this with threads >= 1.
  const FaultInjector* fault_injector = nullptr;
  DegradationPolicy degradation;
  // Test/bench hook: called after every publish with the new snapshot.
  std::function<void(const std::shared_ptr<const CoverageSnapshot>&)>
      on_publish;
};

// What one Ingest() call reports back to its driver.
struct IngestSummary {
  uint64_t edges = 0;
  uint64_t segments = 0;
  uint64_t snapshots_published = 0;
  // Quarantined shard-runs / total shard-runs over all segments (0 inline).
  double quarantined_fraction = 0.0;
  uint32_t shard_runs_quarantined = 0;
  uint64_t ingest_ns = 0;
  bool stream_ok = true;
  std::string stream_error;
};

class ServingRuntime {
 public:
  ServingRuntime(const ServingState::Config& state_config,
                 const ServingRuntimeOptions& options, SnapshotStore* store);

  // Drains `stream`, publishing a snapshot after every segment and a final
  // one at end of stream (an end-of-stream segment shorter than the cadence
  // still publishes, so the last snapshot always covers the whole stream).
  IngestSummary Ingest(EdgeStream& stream);

  // The live cumulative state. Only meaningful to touch when no Ingest()
  // is running; snapshots, not this object, are the queryable surface.
  const ServingState& state() const { return state_; }

 private:
  void PublishSnapshot(IngestSummary* summary);
  IngestSummary IngestInline(EdgeStream& stream);
  IngestSummary IngestSharded(EdgeStream& stream);

  ServingState::Config state_config_;
  ServingRuntimeOptions options_;
  SnapshotStore* store_;
  ServingState state_;
  uint64_t epoch_ = 0;

  Counter* edges_ingested_;
  Counter* segments_total_;
  Histogram* publish_ns_;
};

}  // namespace streamkc

#endif  // STREAMKC_SERVE_SERVING_RUNTIME_H_
