// The estimator bundle a serving instance ingests into.
//
// A query-serving deployment needs three things from its state that the
// bare estimators provide separately:
//
//   * EstimateMaxCover / ReportMaxCover answers — ReportMaxCover wraps the
//     full oracle stack (estimation + witness extraction), so one reporter
//     covers both query types;
//   * per-set coverage lookups — a CountSketch over set ids tracks each
//     set's incidence count (its coverage contribution, duplicates and all),
//     and CountSketch::PointQuery is genuinely const and pure, which makes
//     it the ONE component safe to serve to concurrent readers directly
//     (the core estimators settle `mutable` buffers inside const Finalize,
//     so their answers must be precomputed at snapshot-publish time — see
//     serve/snapshot.h);
//   * the ShardedPipeline State contract — Process/ProcessBatch/Merge/
//     MergeFingerprint/SpaceMetered — so serving instances shard exactly
//     like one-shot passes.

#ifndef STREAMKC_SERVE_SERVING_STATE_H_
#define STREAMKC_SERVE_SERVING_STATE_H_

#include <cstdint>

#include "core/report_max_cover.h"
#include "obs/space_accountant.h"
#include "sketch/count_sketch.h"
#include "stream/edge.h"

namespace streamkc {

class ServingState : public SpaceMetered {
 public:
  struct Config {
    Params params;
    uint64_t seed = 1;
    // Geometry of the per-set coverage CountSketch. Width bounds the
    // additive error of a set-coverage lookup at O(sqrt(F2/width)).
    uint32_t set_sketch_depth = 4;
    uint32_t set_sketch_width = 1024;
  };

  explicit ServingState(const Config& config);

  void Process(const Edge& edge);
  void ProcessBatch(const PrefoldedEdges& batch);

  // Merges a same-Config replica (the sharded-pipeline fold).
  void Merge(const ServingState& other);

  // Everything Merge() requires to agree: the reporter's fingerprint plus
  // the set-sketch geometry and seed.
  uint64_t MergeFingerprint() const;

  // Finalized answers for snapshot publication. Finalize settles mutable
  // sketch buffers, so this must run on the (single) publishing thread,
  // never concurrently with queries — snapshots store the results.
  MaxCoverSolution FinalizeSolution() const { return reporter_.Finalize(); }

  const CountSketch& set_coverage() const { return set_coverage_; }
  const Config& config() const { return config_; }

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "serving_state"; }
  void ReportSpace(SpaceAccountant* acct) const override;

 private:
  Config config_;
  ReportMaxCover reporter_;
  CountSketch set_coverage_;
};

}  // namespace streamkc

#endif  // STREAMKC_SERVE_SERVING_STATE_H_
