// CoverageSnapshot: an immutable, self-contained view of a serving
// instance's state at one publish boundary.
//
// Consistency model: a snapshot is built single-threaded at a batch
// boundary (after a whole ingest segment has been processed and merged), so
// it never exposes a partial merge. It shares NO storage with the live
// estimator: the query sketch travels through a serialized blob (the
// existing CountSketch Save/Load format) and is restored from those bytes,
// and the max-cover answers are finalized once at build time — the core
// estimators settle `mutable` buffers inside const Finalize(), so
// finalizing per query from many reader threads would race; precomputing
// makes every read a pure lookup.
//
// Integrity: the blob carries a (magic, version) header and an FNV-1a
// checksum over the payload. FromBlob CHECK-fails on any mismatch — a
// corrupt snapshot must never be served (tests/serve_snapshot_test.cc holds
// this with tampered-blob death tests, the sketch_serialize_test pattern).
// Build() itself round-trips through FromBlob, so the serialization path is
// exercised on every publish, not just in checkpoint tooling.

#ifndef STREAMKC_SERVE_SNAPSHOT_H_
#define STREAMKC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/report_max_cover.h"
#include "serve/serving_state.h"
#include "sketch/count_sketch.h"

namespace streamkc {

// Staleness metadata stamped on the snapshot at publish time and attached
// verbatim to every answer served from it.
struct SnapshotMeta {
  uint64_t epoch = 0;            // 1-based publish sequence number
  uint64_t edges_ingested = 0;   // edges the snapshot's state has seen
  uint64_t batches_ingested = 0; // ingest segments folded in
  // Fraction of shard substreams quarantined out of the merges feeding this
  // snapshot (0 for inline ingest / clean sharded runs): the confidence
  // discount every answer inherits.
  double quarantined_fraction = 0.0;
  uint32_t shards = 0;           // ingest shard count (0 = inline)
  // steady_clock nanoseconds at publish; age = now - publish_steady_ns.
  uint64_t publish_steady_ns = 0;
};

class CoverageSnapshot {
 public:
  // Finalizes `state`'s answers, serializes the snapshot, and restores it
  // from its own blob. Runs on the publishing thread only.
  static std::shared_ptr<const CoverageSnapshot> Build(
      const ServingState& state, const SnapshotMeta& meta);

  // Restores a snapshot from serialized bytes. CHECK-fails on a bad magic,
  // version, checksum, or truncated payload — corruption is fatal, never
  // silently served.
  static std::shared_ptr<const CoverageSnapshot> FromBlob(
      const std::string& blob);

  const SnapshotMeta& meta() const { return meta_; }
  // Precomputed ReportMaxCover answer (estimate + source + witness sets).
  const MaxCoverSolution& solution() const { return solution_; }
  // Estimated incidence count of `set` (its coverage contribution). Const
  // and pure — safe from any number of reader threads concurrently.
  double SetCoverage(SetId set) const { return set_coverage_->PointQuery(set); }

  const std::string& blob() const { return blob_; }
  size_t MemoryBytes() const;

  // Snapshot age relative to `now_steady_ns` (0 if clocks ran backwards).
  uint64_t AgeNs(uint64_t now_steady_ns) const {
    return now_steady_ns > meta_.publish_steady_ns
               ? now_steady_ns - meta_.publish_steady_ns
               : 0;
  }

 private:
  CoverageSnapshot() = default;

  SnapshotMeta meta_;
  MaxCoverSolution solution_;
  std::unique_ptr<CountSketch> set_coverage_;
  std::string blob_;
};

// FNV-1a 64 over `bytes` — the snapshot payload checksum.
uint64_t SnapshotChecksum(const std::string& bytes);

}  // namespace streamkc

#endif  // STREAMKC_SERVE_SNAPSHOT_H_
