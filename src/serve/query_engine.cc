#include "serve/query_engine.h"

#include <chrono>

#include "util/check.h"

namespace streamkc {

namespace {

uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

QueryEngine::QueryEngine(const SnapshotStore* store, MetricsRegistry* registry,
                         const std::atomic<bool>* over_budget)
    : store_(store), over_budget_(over_budget) {
  CHECK(store != nullptr);
  MetricsRegistry* reg = registry ? registry : &MetricsRegistry::Global();
  served_estimate_ =
      reg->GetCounter(LabeledName("serve_queries_total", "type", "estimate"));
  served_report_ =
      reg->GetCounter(LabeledName("serve_queries_total", "type", "report"));
  served_set_coverage_ = reg->GetCounter(
      LabeledName("serve_queries_total", "type", "set_coverage"));
  rejected_no_snapshot_ = reg->GetCounter(
      LabeledName("serve_queries_rejected_total", "reason", "no_snapshot"));
  rejected_over_budget_ = reg->GetCounter(
      LabeledName("serve_queries_rejected_total", "reason", "over_budget"));
  latency_estimate_ = reg->GetHistogram(
      LabeledName("serve_query_latency_ns", "type", "estimate"));
  latency_report_ = reg->GetHistogram(
      LabeledName("serve_query_latency_ns", "type", "report"));
  latency_set_coverage_ = reg->GetHistogram(
      LabeledName("serve_query_latency_ns", "type", "set_coverage"));
  snapshot_age_ns_ = reg->GetGauge("serve_snapshot_age_ns");
}

std::shared_ptr<const CoverageSnapshot> QueryEngine::Admit(
    std::string* error) const {
  if (over_budget_ != nullptr &&
      over_budget_->load(std::memory_order_relaxed)) {
    rejected_over_budget_->Increment();
    *error = "tenant over space budget";
    return nullptr;
  }
  std::shared_ptr<const CoverageSnapshot> snap = store_->Current();
  if (snap == nullptr) {
    rejected_no_snapshot_->Increment();
    *error = "no snapshot published yet";
    return nullptr;
  }
  return snap;
}

QueryStaleness QueryEngine::StalenessOf(const CoverageSnapshot& snap,
                                        uint64_t now_steady_ns) {
  QueryStaleness s;
  s.epoch = snap.meta().epoch;
  s.edges_ingested = snap.meta().edges_ingested;
  s.batches_ingested = snap.meta().batches_ingested;
  s.quarantined_fraction = snap.meta().quarantined_fraction;
  s.age_ns = snap.AgeNs(now_steady_ns);
  return s;
}

EstimateAnswer QueryEngine::Estimate() const {
  uint64_t t0 = NowSteadyNs();
  EstimateAnswer ans;
  auto snap = Admit(&ans.error);
  if (snap == nullptr) return ans;
  ans.ok = true;
  ans.estimate = snap->solution().estimate;
  ans.source = snap->solution().source;
  uint64_t t1 = NowSteadyNs();
  ans.staleness = StalenessOf(*snap, t1);
  snapshot_age_ns_->Set(ans.staleness.age_ns);
  served_estimate_->Increment();
  latency_estimate_->Observe(t1 - t0);
  return ans;
}

ReportAnswer QueryEngine::Report() const {
  uint64_t t0 = NowSteadyNs();
  ReportAnswer ans;
  auto snap = Admit(&ans.error);
  if (snap == nullptr) return ans;
  ans.ok = true;
  ans.sets = snap->solution().sets;
  ans.estimate = snap->solution().estimate;
  ans.source = snap->solution().source;
  uint64_t t1 = NowSteadyNs();
  ans.staleness = StalenessOf(*snap, t1);
  snapshot_age_ns_->Set(ans.staleness.age_ns);
  served_report_->Increment();
  latency_report_->Observe(t1 - t0);
  return ans;
}

SetCoverageAnswer QueryEngine::SetCoverage(SetId set) const {
  uint64_t t0 = NowSteadyNs();
  SetCoverageAnswer ans;
  ans.set = set;
  auto snap = Admit(&ans.error);
  if (snap == nullptr) return ans;
  ans.ok = true;
  ans.coverage = snap->SetCoverage(set);
  uint64_t t1 = NowSteadyNs();
  ans.staleness = StalenessOf(*snap, t1);
  snapshot_age_ns_->Set(ans.staleness.age_ns);
  served_set_coverage_->Increment();
  latency_set_coverage_->Observe(t1 - t0);
  return ans;
}

}  // namespace streamkc
