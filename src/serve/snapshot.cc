#include "serve/snapshot.h"

#include <sstream>

#include "util/check.h"
#include "util/serialize.h"

namespace streamkc {

namespace {

// 'K''C''S''N' — streamkc coverage snapshot.
constexpr uint32_t kSnapshotMagic = 0x4B43534E;
constexpr uint32_t kSnapshotVersion = 1;

void WriteString(std::ostream& os, const std::string& s) {
  WriteU64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  uint64_t size = ReadU64(is);
  // Defensive cap, same discipline as ReadPodVector: a corrupt length must
  // not drive a huge allocation before the checksum would have caught it.
  CHECK_LT(size, uint64_t{1} << 20);
  std::string s(size, '\0');
  is.read(s.data(), static_cast<std::streamsize>(size));
  CHECK(is.good() || size == 0);
  return s;
}

}  // namespace

uint64_t SnapshotChecksum(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::shared_ptr<const CoverageSnapshot> CoverageSnapshot::Build(
    const ServingState& state, const SnapshotMeta& meta) {
  MaxCoverSolution solution = state.FinalizeSolution();

  // Payload first, so the checksum can cover every byte after the header.
  std::stringstream payload;
  WriteU64(payload, meta.epoch);
  WriteU64(payload, meta.edges_ingested);
  WriteU64(payload, meta.batches_ingested);
  WriteDouble(payload, meta.quarantined_fraction);
  WriteU32(payload, meta.shards);
  WriteU64(payload, meta.publish_steady_ns);
  WriteDouble(payload, solution.estimate);
  WriteString(payload, solution.source);
  WritePodVector(payload, solution.sets);
  state.set_coverage().Save(payload);

  std::stringstream blob;
  WriteHeader(blob, kSnapshotMagic, kSnapshotVersion);
  const std::string payload_bytes = payload.str();
  WriteU64(blob, SnapshotChecksum(payload_bytes));
  blob.write(payload_bytes.data(),
             static_cast<std::streamsize>(payload_bytes.size()));
  // Restoring from the just-written bytes (instead of copying live members)
  // keeps the serialization path on the publish hot path: a blob that can't
  // round-trip fails HERE, at the producer, not at a reader.
  return FromBlob(blob.str());
}

std::shared_ptr<const CoverageSnapshot> CoverageSnapshot::FromBlob(
    const std::string& blob) {
  std::stringstream is(blob);
  CheckHeader(is, kSnapshotMagic, kSnapshotVersion);
  uint64_t want_checksum = ReadU64(is);
  constexpr size_t kHeaderBytes = 4 + 4 + 8;
  CHECK_GE(blob.size(), kHeaderBytes);
  CHECK_EQ(SnapshotChecksum(blob.substr(kHeaderBytes)), want_checksum);

  auto snap = std::shared_ptr<CoverageSnapshot>(new CoverageSnapshot());
  snap->meta_.epoch = ReadU64(is);
  snap->meta_.edges_ingested = ReadU64(is);
  snap->meta_.batches_ingested = ReadU64(is);
  snap->meta_.quarantined_fraction = ReadDouble(is);
  snap->meta_.shards = ReadU32(is);
  snap->meta_.publish_steady_ns = ReadU64(is);
  snap->solution_.estimate = ReadDouble(is);
  snap->solution_.source = ReadString(is);
  snap->solution_.sets = ReadPodVector<SetId>(is);
  snap->set_coverage_ = std::make_unique<CountSketch>(CountSketch::Load(is));
  snap->blob_ = blob;
  return snap;
}

size_t CoverageSnapshot::MemoryBytes() const {
  return blob_.size() + set_coverage_->MemoryBytes() +
         solution_.sets.size() * sizeof(SetId);
}

}  // namespace streamkc
