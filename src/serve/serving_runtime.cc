#include "serve/serving_runtime.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"

namespace streamkc {

namespace {

uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ServingRuntime::ServingRuntime(const ServingState::Config& state_config,
                               const ServingRuntimeOptions& options,
                               SnapshotStore* store)
    : state_config_(state_config),
      options_(options),
      store_(store),
      state_(state_config) {
  CHECK(store != nullptr);
  CHECK_GE(options_.snapshot_every_edges, 1u);
  CHECK_GE(options_.batch_size, 1u);
  MetricsRegistry* reg =
      options_.registry ? options_.registry : &MetricsRegistry::Global();
  edges_ingested_ = reg->GetCounter("serve_ingest_edges_total");
  segments_total_ = reg->GetCounter("serve_ingest_segments_total");
  publish_ns_ = reg->GetHistogram("serve_publish_ns");
}

void ServingRuntime::PublishSnapshot(IngestSummary* summary) {
  uint64_t t0 = NowSteadyNs();
  SnapshotMeta meta;
  meta.epoch = ++epoch_;
  meta.edges_ingested = summary->edges;
  meta.batches_ingested = summary->segments;
  meta.quarantined_fraction = summary->quarantined_fraction;
  meta.shards = options_.threads;
  meta.publish_steady_ns = t0;
  std::shared_ptr<const CoverageSnapshot> snap =
      CoverageSnapshot::Build(state_, meta);
  store_->Publish(snap);
  ++summary->snapshots_published;
  publish_ns_->Observe(NowSteadyNs() - t0);
  if (options_.on_publish) options_.on_publish(snap);
}

IngestSummary ServingRuntime::Ingest(EdgeStream& stream) {
  uint64_t t0 = NowSteadyNs();
  IngestSummary summary = options_.threads == 0 ? IngestInline(stream)
                                                : IngestSharded(stream);
  summary.ingest_ns = NowSteadyNs() - t0;
  summary.stream_ok = stream.ok();
  if (!summary.stream_ok) summary.stream_error = stream.StatusMessage();
  return summary;
}

IngestSummary ServingRuntime::IngestInline(EdgeStream& stream) {
  IngestSummary summary;
  const DegradationPolicy& deg = options_.degradation;
  uint32_t retries_used = 0;
  uint64_t backoff_ns = deg.initial_backoff_ns;
  uint64_t segment_edges = 0;
  EdgeBatch batch(options_.batch_size);
  for (;;) {
    // Cap the read so a segment boundary always falls exactly on the
    // snapshot cadence — the epoch-E differential guarantee depends on it.
    uint64_t room = options_.snapshot_every_edges - segment_edges;
    size_t want = options_.batch_size < room
                      ? options_.batch_size
                      : static_cast<size_t>(room);
    size_t got = stream.NextBatch(&batch.edges, want);
    if (got > 0) {
      retries_used = 0;
      backoff_ns = deg.initial_backoff_ns;
      batch.Prefold();
      state_.ProcessBatch(batch.View());
      edges_ingested_->Increment(got);
      summary.edges += got;
      segment_edges += got;
      if (segment_edges >= options_.snapshot_every_edges) {
        segment_edges = 0;
        ++summary.segments;
        segments_total_->Increment();
        PublishSnapshot(&summary);
      }
      continue;
    }
    if (!stream.ok() && stream.transient() &&
        retries_used < deg.max_stream_retries) {
      ++retries_used;
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
      backoff_ns *= 2;
      continue;
    }
    break;  // clean end of stream, or an unrecoverable error
  }
  // A trailing partial segment still publishes, so the final snapshot
  // always covers the entire stream.
  if (segment_edges > 0) {
    ++summary.segments;
    segments_total_->Increment();
    PublishSnapshot(&summary);
  }
  return summary;
}

IngestSummary ServingRuntime::IngestSharded(EdgeStream& stream) {
  IngestSummary summary;
  ShardedPipelineOptions popts;
  popts.num_shards = options_.threads;
  popts.batch_size = options_.batch_size;
  popts.policy = options_.policy;
  popts.registry = options_.registry;
  popts.fault_injector = options_.fault_injector;
  popts.degradation = options_.degradation;

  const ServingState::Config config = state_config_;
  ShardedPipeline<ServingState>::Factory factory =
      [config](uint32_t) { return ServingState(config); };

  BoundedEdgeStream bounded(&stream, options_.snapshot_every_edges);
  uint32_t shard_runs_total = 0;
  for (;;) {
    bounded.Rearm();
    // One segment = one full pipeline run over the bounded view: the
    // degradation machinery (retries, quarantine, fingerprint votes) is
    // reused unchanged at every snapshot boundary.
    ShardedPipeline<ServingState> pipeline(popts, factory);
    ServingState segment = pipeline.Run(bounded);
    const RuntimeMetrics& rm = pipeline.metrics();
    uint64_t got = rm.edges_ingested.load(std::memory_order_relaxed);
    if (got == 0) break;  // end of stream or unrecoverable error
    // Only segments that saw edges count toward the quarantine fraction —
    // an empty trailing run has no substreams to lose.
    shard_runs_total += options_.threads;
    summary.shard_runs_quarantined += static_cast<uint32_t>(
        rm.shards_quarantined.load(std::memory_order_relaxed));
    summary.quarantined_fraction =
        static_cast<double>(summary.shard_runs_quarantined) /
        static_cast<double>(shard_runs_total);
    state_.Merge(segment);
    edges_ingested_->Increment(got);
    summary.edges += got;
    ++summary.segments;
    segments_total_->Increment();
    PublishSnapshot(&summary);
    if (!stream.ok()) break;  // truncated segment: error already surfaced
  }
  return summary;
}

}  // namespace streamkc
