// SnapshotStore: atomic double-buffered publication of CoverageSnapshots.
//
// One writer (the ingest runtime) publishes at batch boundaries; any number
// of reader threads fetch the current snapshot at query time. The store
// keeps two slots. Readers copy the shared_ptr out of the slot the atomic
// `active_` index names; the writer always installs into the INACTIVE slot
// and then flips the index. So:
//
//   * the writer never waits on the slot readers are being directed to —
//     publication cannot be blocked by query load (the ingest hot path
//     stays reader-independent);
//   * a reader that loaded the index just before a flip still sees a fully
//     constructed snapshot (the slot it names is only rewritten after the
//     NEXT flip, by which time the per-slot mutex covers the handoff);
//   * snapshots are shared_ptr-owned, so a reader holding epoch E keeps it
//     alive arbitrarily long after E+2 is published — readers never observe
//     a snapshot being destroyed under them.
//
// The per-slot mutex guards only the shared_ptr copy itself (refcount +
// pointer, a few ns); it is never held while building, serializing, or
// querying a snapshot.

#ifndef STREAMKC_SERVE_SNAPSHOT_STORE_H_
#define STREAMKC_SERVE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace streamkc {

class SnapshotStore {
 public:
  // `name` labels the store's metrics (serve_snapshot_epoch{store="name"});
  // `registry` nullptr = the process-wide registry.
  explicit SnapshotStore(std::string name = "default",
                         MetricsRegistry* registry = nullptr);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Installs `snap` as the current snapshot. Single writer; epochs must be
  // published in increasing order (CHECKed).
  void Publish(std::shared_ptr<const CoverageSnapshot> snap);

  // The current snapshot, or nullptr before the first publish. Safe from
  // any thread, any number of concurrent callers.
  std::shared_ptr<const CoverageSnapshot> Current() const;

  // Epoch of the latest published snapshot (0 before the first publish).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  const std::string& name() const { return name_; }

 private:
  struct Slot {
    mutable std::mutex mu;
    std::shared_ptr<const CoverageSnapshot> snap;
  };

  std::string name_;
  Slot slots_[2];
  // Index of the slot readers should use. Release/acquire pairs with the
  // slot write, so a reader that sees the new index sees the new snapshot.
  std::atomic<uint32_t> active_{0};
  std::atomic<uint64_t> epoch_{0};

  Counter* published_ = nullptr;
  Gauge* epoch_gauge_ = nullptr;
  Gauge* blob_bytes_gauge_ = nullptr;
  Gauge* edges_gauge_ = nullptr;
};

}  // namespace streamkc

#endif  // STREAMKC_SERVE_SNAPSHOT_STORE_H_
