#include "serve/serving_state.h"

#include "util/random.h"

namespace streamkc {

namespace {

ReportMaxCover::Config ReporterConfig(const ServingState::Config& config) {
  ReportMaxCover::Config rc;
  rc.params = config.params;
  rc.seed = config.seed;
  return rc;
}

CountSketch::Config SetSketchConfig(const ServingState::Config& config) {
  CountSketch::Config cc;
  cc.depth = config.set_sketch_depth;
  cc.width = config.set_sketch_width;
  // Decorrelated from the reporter's hashes but still a pure function of the
  // instance seed, so same-seed replicas stay merge-compatible.
  cc.seed = SplitMix64(config.seed ^ 0x5e7c0e5aul);
  return cc;
}

}  // namespace

ServingState::ServingState(const Config& config)
    : config_(config),
      reporter_(ReporterConfig(config)),
      set_coverage_(SetSketchConfig(config)) {}

void ServingState::Process(const Edge& edge) {
  reporter_.Process(edge);
  set_coverage_.Add(edge.set);
}

void ServingState::ProcessBatch(const PrefoldedEdges& batch) {
  reporter_.ProcessBatch(batch);
  set_coverage_.AddFoldedBatch(batch.set_folded, batch.size);
}

void ServingState::Merge(const ServingState& other) {
  reporter_.Merge(other.reporter_);
  set_coverage_.Merge(other.set_coverage_);
}

uint64_t ServingState::MergeFingerprint() const {
  uint64_t fp = reporter_.MergeFingerprint();
  fp = SplitMix64(fp ^ config_.set_sketch_depth);
  fp = SplitMix64(fp ^ config_.set_sketch_width);
  return fp;
}

size_t ServingState::MemoryBytes() const {
  return reporter_.MemoryBytes() + set_coverage_.MemoryBytes();
}

void ServingState::ReportSpace(SpaceAccountant* acct) const {
  acct->Report(ComponentName(), MemoryBytes(), 0);
  reporter_.ReportSpace(acct);
  set_coverage_.ReportSpace(acct);
}

}  // namespace streamkc
