// QueryEngine: answers coverage queries against the current snapshot.
//
// Every answer carries staleness metadata (snapshot epoch, edges ingested,
// quarantined-shard fraction, snapshot age) so callers can decide whether a
// bounded-stale answer is acceptable — the serving layer's consistency
// contract is "reads see the latest published batch boundary", never
// read-your-ingest.
//
// All three query types are pure reads over an immutable snapshot:
// EstimateMaxCover / ReportMaxCover return answers precomputed at publish
// time, SetCoverage runs a const CountSketch point query. The engine is
// therefore safe to share across any number of reader threads.
//
// Rejections (no snapshot published yet, tenant over its space budget) are
// explicit answers with `ok == false`, counted per reason in
// serve_queries_rejected_total — a serving system must fail queries
// loudly, not hand out garbage.

#ifndef STREAMKC_SERVE_QUERY_ENGINE_H_
#define STREAMKC_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/snapshot_store.h"
#include "stream/edge.h"

namespace streamkc {

// Staleness metadata attached to every served answer.
struct QueryStaleness {
  uint64_t epoch = 0;
  uint64_t edges_ingested = 0;
  uint64_t batches_ingested = 0;
  double quarantined_fraction = 0.0;
  uint64_t age_ns = 0;  // now - snapshot publish time
};

struct EstimateAnswer {
  bool ok = false;
  std::string error;  // set when !ok
  double estimate = 0;
  std::string source;
  QueryStaleness staleness;
};

struct ReportAnswer {
  bool ok = false;
  std::string error;
  std::vector<SetId> sets;
  double estimate = 0;
  std::string source;
  QueryStaleness staleness;
};

struct SetCoverageAnswer {
  bool ok = false;
  std::string error;
  SetId set = 0;
  double coverage = 0;  // estimated incidence count of `set`
  QueryStaleness staleness;
};

class QueryEngine {
 public:
  // `registry` nullptr = the process-wide registry. `over_budget`, when
  // non-null, is the owning tenant's budget-violation flag: queries are
  // rejected while it is set (TenantRegistry wires it).
  explicit QueryEngine(const SnapshotStore* store,
                       MetricsRegistry* registry = nullptr,
                       const std::atomic<bool>* over_budget = nullptr);

  EstimateAnswer Estimate() const;
  ReportAnswer Report() const;
  SetCoverageAnswer SetCoverage(SetId set) const;

 private:
  // Shared admission + snapshot fetch. Returns nullptr after filling
  // `error` (and counting the rejection) when the query cannot be served.
  std::shared_ptr<const CoverageSnapshot> Admit(std::string* error) const;

  static QueryStaleness StalenessOf(const CoverageSnapshot& snap,
                                    uint64_t now_steady_ns);

  const SnapshotStore* store_;
  const std::atomic<bool>* over_budget_;

  Counter* served_estimate_;
  Counter* served_report_;
  Counter* served_set_coverage_;
  Counter* rejected_no_snapshot_;
  Counter* rejected_over_budget_;
  Histogram* latency_estimate_;
  Histogram* latency_report_;
  Histogram* latency_set_coverage_;
  Gauge* snapshot_age_ns_;
};

}  // namespace streamkc

#endif  // STREAMKC_SERVE_QUERY_ENGINE_H_
