#include "serve/tenant_registry.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace streamkc {

namespace {

// Mirror of the AlphaForBudget footprint model (core/params.cc): predicted
// sketch bytes at a given α. Used only for admission feasibility — the
// smallest possible footprint is the α = √m point, where m/α² = 1.
double PredictedBytes(uint64_t m, uint64_t n, uint64_t k, double alpha) {
  double log_mn =
      std::max(std::log2(static_cast<double>(m) * static_cast<double>(n)), 1.0);
  double words = 150.0 * log_mn *
                 (static_cast<double>(m) / (alpha * alpha) +
                  static_cast<double>(k));
  return 8.0 * words;
}

}  // namespace

Tenant::Tenant(const std::string& name, const TenantQuota& quota, double alpha,
               const ServingState::Config& state_config,
               MetricsRegistry* registry)
    : name_(name),
      quota_(quota),
      alpha_(alpha),
      state_config_(state_config),
      store_(name, registry),
      engine_(&store_, registry, &over_budget_) {
  budget_gauge_ = registry->GetGauge(
      LabeledName("serve_tenant_budget_bytes", "tenant", name));
  space_gauge_ = registry->GetGauge(
      LabeledName("serve_tenant_space_bytes", "tenant", name));
  budget_gauge_->Set(quota.budget_bytes);
}

TenantRegistry::TenantRegistry(size_t global_budget_bytes,
                               MetricsRegistry* registry)
    : global_budget_bytes_(global_budget_bytes),
      registry_(registry ? registry : &MetricsRegistry::Global()) {
  tenants_gauge_ = registry_->GetGauge("serve_tenants");
  reserved_gauge_ = registry_->GetGauge("serve_tenant_reserved_bytes");
  admitted_total_ = registry_->GetCounter("serve_tenants_admitted_total");
  rejected_total_ = registry_->GetCounter("serve_tenants_rejected_total");
}

Tenant* TenantRegistry::Create(const std::string& name,
                               const TenantQuota& quota, std::string* error) {
  CHECK(error != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto reject = [&](const std::string& why) -> Tenant* {
    *error = why;
    rejected_total_->Increment();
    return nullptr;
  };
  if (name.empty()) return reject("tenant name must be non-empty");
  if (tenants_.count(name) != 0) {
    return reject("tenant '" + name + "' already exists");
  }
  if (quota.m == 0 || quota.n == 0 || quota.k == 0) {
    return reject("tenant quota needs m, n, k >= 1");
  }
  if (quota.budget_bytes == 0) {
    return reject("tenant budget_bytes must be > 0");
  }
  // Feasibility under the space law: even the loosest admissible
  // approximation (α clamped at √m, where the m/α² term bottoms out at one
  // unit) has a predicted floor; a budget below it cannot be honored.
  double floor_bytes = PredictedBytes(
      quota.m, quota.n, quota.k, std::sqrt(static_cast<double>(quota.m)));
  if (static_cast<double>(quota.budget_bytes) < floor_bytes) {
    return reject("budget " + std::to_string(quota.budget_bytes) +
                  " bytes is below the space-law floor (~" +
                  std::to_string(static_cast<uint64_t>(floor_bytes)) +
                  " bytes at alpha = sqrt(m)) for this instance");
  }
  if (global_budget_bytes_ != 0 &&
      reserved_bytes_ + quota.budget_bytes > global_budget_bytes_) {
    return reject("global budget exhausted: " +
                  std::to_string(reserved_bytes_) + " of " +
                  std::to_string(global_budget_bytes_) +
                  " bytes already reserved, tenant wants " +
                  std::to_string(quota.budget_bytes));
  }

  double alpha =
      Params::AlphaForBudget(quota.m, quota.n, quota.k, quota.budget_bytes);
  ServingState::Config config;
  config.params = Params::Practical(quota.m, quota.n, quota.k, alpha);
  config.seed = quota.seed;
  auto tenant = std::unique_ptr<Tenant>(
      new Tenant(name, quota, alpha, config, registry_));
  Tenant* out = tenant.get();
  tenants_.emplace(name, std::move(tenant));
  reserved_bytes_ += quota.budget_bytes;
  tenants_gauge_->Set(tenants_.size());
  reserved_gauge_->Set(reserved_bytes_);
  admitted_total_->Increment();
  return out;
}

Tenant* TenantRegistry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

bool TenantRegistry::RecordSpace(const std::string& name, uint64_t bytes) {
  Tenant* t = Find(name);
  if (t == nullptr) return false;
  t->space_bytes_.store(bytes, std::memory_order_relaxed);
  t->space_gauge_->Set(bytes);
  t->over_budget_.store(bytes > t->quota_.budget_bytes,
                        std::memory_order_relaxed);
  return true;
}

size_t TenantRegistry::NumTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

size_t TenantRegistry::reserved_budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_bytes_;
}

std::vector<std::string> TenantRegistry::TenantNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, _] : tenants_) names.push_back(name);
  return names;
}

}  // namespace streamkc
