# Empty compiler generated dependencies file for bench_set_cover.
# This may be replaced when dependencies are built.
