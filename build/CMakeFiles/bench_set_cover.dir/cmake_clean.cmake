file(REMOVE_RECURSE
  "CMakeFiles/bench_set_cover.dir/bench/bench_set_cover.cc.o"
  "CMakeFiles/bench_set_cover.dir/bench/bench_set_cover.cc.o.d"
  "bench/bench_set_cover"
  "bench/bench_set_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_set_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
