file(REMOVE_RECURSE
  "CMakeFiles/bench_tradeoff.dir/bench/bench_tradeoff.cc.o"
  "CMakeFiles/bench_tradeoff.dir/bench/bench_tradeoff.cc.o.d"
  "bench/bench_tradeoff"
  "bench/bench_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
