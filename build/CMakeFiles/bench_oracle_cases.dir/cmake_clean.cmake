file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_cases.dir/bench/bench_oracle_cases.cc.o"
  "CMakeFiles/bench_oracle_cases.dir/bench/bench_oracle_cases.cc.o.d"
  "bench/bench_oracle_cases"
  "bench/bench_oracle_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
