# Empty compiler generated dependencies file for bench_oracle_cases.
# This may be replaced when dependencies are built.
