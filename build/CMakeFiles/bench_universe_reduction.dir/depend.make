# Empty dependencies file for bench_universe_reduction.
# This may be replaced when dependencies are built.
