file(REMOVE_RECURSE
  "CMakeFiles/bench_universe_reduction.dir/bench/bench_universe_reduction.cc.o"
  "CMakeFiles/bench_universe_reduction.dir/bench/bench_universe_reduction.cc.o.d"
  "bench/bench_universe_reduction"
  "bench/bench_universe_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_universe_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
