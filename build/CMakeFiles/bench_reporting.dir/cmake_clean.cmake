file(REMOVE_RECURSE
  "CMakeFiles/bench_reporting.dir/bench/bench_reporting.cc.o"
  "CMakeFiles/bench_reporting.dir/bench/bench_reporting.cc.o.d"
  "bench/bench_reporting"
  "bench/bench_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
