# Empty dependencies file for bench_reporting.
# This may be replaced when dependencies are built.
