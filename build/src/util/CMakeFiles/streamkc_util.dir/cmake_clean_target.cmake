file(REMOVE_RECURSE
  "libstreamkc_util.a"
)
