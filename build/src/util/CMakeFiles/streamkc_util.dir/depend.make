# Empty dependencies file for streamkc_util.
# This may be replaced when dependencies are built.
