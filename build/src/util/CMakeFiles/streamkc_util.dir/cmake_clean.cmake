file(REMOVE_RECURSE
  "CMakeFiles/streamkc_util.dir/math_util.cc.o"
  "CMakeFiles/streamkc_util.dir/math_util.cc.o.d"
  "CMakeFiles/streamkc_util.dir/random.cc.o"
  "CMakeFiles/streamkc_util.dir/random.cc.o.d"
  "libstreamkc_util.a"
  "libstreamkc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
