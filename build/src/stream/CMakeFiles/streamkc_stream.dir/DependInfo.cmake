
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/edge_stream.cc" "src/stream/CMakeFiles/streamkc_stream.dir/edge_stream.cc.o" "gcc" "src/stream/CMakeFiles/streamkc_stream.dir/edge_stream.cc.o.d"
  "/root/repo/src/stream/stream_stats.cc" "src/stream/CMakeFiles/streamkc_stream.dir/stream_stats.cc.o" "gcc" "src/stream/CMakeFiles/streamkc_stream.dir/stream_stats.cc.o.d"
  "/root/repo/src/stream/text_stream.cc" "src/stream/CMakeFiles/streamkc_stream.dir/text_stream.cc.o" "gcc" "src/stream/CMakeFiles/streamkc_stream.dir/text_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/streamkc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
