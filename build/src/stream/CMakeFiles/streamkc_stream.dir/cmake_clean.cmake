file(REMOVE_RECURSE
  "CMakeFiles/streamkc_stream.dir/edge_stream.cc.o"
  "CMakeFiles/streamkc_stream.dir/edge_stream.cc.o.d"
  "CMakeFiles/streamkc_stream.dir/stream_stats.cc.o"
  "CMakeFiles/streamkc_stream.dir/stream_stats.cc.o.d"
  "CMakeFiles/streamkc_stream.dir/text_stream.cc.o"
  "CMakeFiles/streamkc_stream.dir/text_stream.cc.o.d"
  "libstreamkc_stream.a"
  "libstreamkc_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
