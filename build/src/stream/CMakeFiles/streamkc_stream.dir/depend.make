# Empty dependencies file for streamkc_stream.
# This may be replaced when dependencies are built.
