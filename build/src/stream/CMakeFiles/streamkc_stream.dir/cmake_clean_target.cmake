file(REMOVE_RECURSE
  "libstreamkc_stream.a"
)
