file(REMOVE_RECURSE
  "CMakeFiles/streamkc_hash.dir/kwise_hash.cc.o"
  "CMakeFiles/streamkc_hash.dir/kwise_hash.cc.o.d"
  "libstreamkc_hash.a"
  "libstreamkc_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
