file(REMOVE_RECURSE
  "libstreamkc_hash.a"
)
