# Empty compiler generated dependencies file for streamkc_hash.
# This may be replaced when dependencies are built.
