
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/baselines.cc" "src/offline/CMakeFiles/streamkc_offline.dir/baselines.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/baselines.cc.o.d"
  "/root/repo/src/offline/exact.cc" "src/offline/CMakeFiles/streamkc_offline.dir/exact.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/exact.cc.o.d"
  "/root/repo/src/offline/greedy.cc" "src/offline/CMakeFiles/streamkc_offline.dir/greedy.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/greedy.cc.o.d"
  "/root/repo/src/offline/multi_pass_set_cover.cc" "src/offline/CMakeFiles/streamkc_offline.dir/multi_pass_set_cover.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/multi_pass_set_cover.cc.o.d"
  "/root/repo/src/offline/set_arrival_streaming.cc" "src/offline/CMakeFiles/streamkc_offline.dir/set_arrival_streaming.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/set_arrival_streaming.cc.o.d"
  "/root/repo/src/offline/set_cover.cc" "src/offline/CMakeFiles/streamkc_offline.dir/set_cover.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/set_cover.cc.o.d"
  "/root/repo/src/offline/sketch_greedy.cc" "src/offline/CMakeFiles/streamkc_offline.dir/sketch_greedy.cc.o" "gcc" "src/offline/CMakeFiles/streamkc_offline.dir/sketch_greedy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/streamkc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/setsys/CMakeFiles/streamkc_setsys.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamkc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/streamkc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/streamkc_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
