# Empty dependencies file for streamkc_offline.
# This may be replaced when dependencies are built.
