file(REMOVE_RECURSE
  "libstreamkc_offline.a"
)
