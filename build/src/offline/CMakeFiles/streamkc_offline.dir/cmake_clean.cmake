file(REMOVE_RECURSE
  "CMakeFiles/streamkc_offline.dir/baselines.cc.o"
  "CMakeFiles/streamkc_offline.dir/baselines.cc.o.d"
  "CMakeFiles/streamkc_offline.dir/exact.cc.o"
  "CMakeFiles/streamkc_offline.dir/exact.cc.o.d"
  "CMakeFiles/streamkc_offline.dir/greedy.cc.o"
  "CMakeFiles/streamkc_offline.dir/greedy.cc.o.d"
  "CMakeFiles/streamkc_offline.dir/multi_pass_set_cover.cc.o"
  "CMakeFiles/streamkc_offline.dir/multi_pass_set_cover.cc.o.d"
  "CMakeFiles/streamkc_offline.dir/set_arrival_streaming.cc.o"
  "CMakeFiles/streamkc_offline.dir/set_arrival_streaming.cc.o.d"
  "CMakeFiles/streamkc_offline.dir/set_cover.cc.o"
  "CMakeFiles/streamkc_offline.dir/set_cover.cc.o.d"
  "CMakeFiles/streamkc_offline.dir/sketch_greedy.cc.o"
  "CMakeFiles/streamkc_offline.dir/sketch_greedy.cc.o.d"
  "libstreamkc_offline.a"
  "libstreamkc_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
