
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/setsys/dsj_instance.cc" "src/setsys/CMakeFiles/streamkc_setsys.dir/dsj_instance.cc.o" "gcc" "src/setsys/CMakeFiles/streamkc_setsys.dir/dsj_instance.cc.o.d"
  "/root/repo/src/setsys/frequency.cc" "src/setsys/CMakeFiles/streamkc_setsys.dir/frequency.cc.o" "gcc" "src/setsys/CMakeFiles/streamkc_setsys.dir/frequency.cc.o.d"
  "/root/repo/src/setsys/generators.cc" "src/setsys/CMakeFiles/streamkc_setsys.dir/generators.cc.o" "gcc" "src/setsys/CMakeFiles/streamkc_setsys.dir/generators.cc.o.d"
  "/root/repo/src/setsys/set_system.cc" "src/setsys/CMakeFiles/streamkc_setsys.dir/set_system.cc.o" "gcc" "src/setsys/CMakeFiles/streamkc_setsys.dir/set_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/streamkc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamkc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
