file(REMOVE_RECURSE
  "CMakeFiles/streamkc_setsys.dir/dsj_instance.cc.o"
  "CMakeFiles/streamkc_setsys.dir/dsj_instance.cc.o.d"
  "CMakeFiles/streamkc_setsys.dir/frequency.cc.o"
  "CMakeFiles/streamkc_setsys.dir/frequency.cc.o.d"
  "CMakeFiles/streamkc_setsys.dir/generators.cc.o"
  "CMakeFiles/streamkc_setsys.dir/generators.cc.o.d"
  "CMakeFiles/streamkc_setsys.dir/set_system.cc.o"
  "CMakeFiles/streamkc_setsys.dir/set_system.cc.o.d"
  "libstreamkc_setsys.a"
  "libstreamkc_setsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_setsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
