# Empty dependencies file for streamkc_setsys.
# This may be replaced when dependencies are built.
