file(REMOVE_RECURSE
  "libstreamkc_setsys.a"
)
