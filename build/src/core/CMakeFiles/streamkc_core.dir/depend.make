# Empty dependencies file for streamkc_core.
# This may be replaced when dependencies are built.
