
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dsj_protocol.cc" "src/core/CMakeFiles/streamkc_core.dir/dsj_protocol.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/dsj_protocol.cc.o.d"
  "/root/repo/src/core/element_sampler.cc" "src/core/CMakeFiles/streamkc_core.dir/element_sampler.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/element_sampler.cc.o.d"
  "/root/repo/src/core/estimate_max_cover.cc" "src/core/CMakeFiles/streamkc_core.dir/estimate_max_cover.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/estimate_max_cover.cc.o.d"
  "/root/repo/src/core/large_common.cc" "src/core/CMakeFiles/streamkc_core.dir/large_common.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/large_common.cc.o.d"
  "/root/repo/src/core/large_set.cc" "src/core/CMakeFiles/streamkc_core.dir/large_set.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/large_set.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/streamkc_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/streamkc_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/params.cc.o.d"
  "/root/repo/src/core/report_max_cover.cc" "src/core/CMakeFiles/streamkc_core.dir/report_max_cover.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/report_max_cover.cc.o.d"
  "/root/repo/src/core/set_sampler.cc" "src/core/CMakeFiles/streamkc_core.dir/set_sampler.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/set_sampler.cc.o.d"
  "/root/repo/src/core/small_set.cc" "src/core/CMakeFiles/streamkc_core.dir/small_set.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/small_set.cc.o.d"
  "/root/repo/src/core/two_pass.cc" "src/core/CMakeFiles/streamkc_core.dir/two_pass.cc.o" "gcc" "src/core/CMakeFiles/streamkc_core.dir/two_pass.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/offline/CMakeFiles/streamkc_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/streamkc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/setsys/CMakeFiles/streamkc_setsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/streamkc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/streamkc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamkc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
