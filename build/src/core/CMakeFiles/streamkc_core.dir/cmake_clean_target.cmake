file(REMOVE_RECURSE
  "libstreamkc_core.a"
)
