file(REMOVE_RECURSE
  "CMakeFiles/streamkc_core.dir/dsj_protocol.cc.o"
  "CMakeFiles/streamkc_core.dir/dsj_protocol.cc.o.d"
  "CMakeFiles/streamkc_core.dir/element_sampler.cc.o"
  "CMakeFiles/streamkc_core.dir/element_sampler.cc.o.d"
  "CMakeFiles/streamkc_core.dir/estimate_max_cover.cc.o"
  "CMakeFiles/streamkc_core.dir/estimate_max_cover.cc.o.d"
  "CMakeFiles/streamkc_core.dir/large_common.cc.o"
  "CMakeFiles/streamkc_core.dir/large_common.cc.o.d"
  "CMakeFiles/streamkc_core.dir/large_set.cc.o"
  "CMakeFiles/streamkc_core.dir/large_set.cc.o.d"
  "CMakeFiles/streamkc_core.dir/oracle.cc.o"
  "CMakeFiles/streamkc_core.dir/oracle.cc.o.d"
  "CMakeFiles/streamkc_core.dir/params.cc.o"
  "CMakeFiles/streamkc_core.dir/params.cc.o.d"
  "CMakeFiles/streamkc_core.dir/report_max_cover.cc.o"
  "CMakeFiles/streamkc_core.dir/report_max_cover.cc.o.d"
  "CMakeFiles/streamkc_core.dir/set_sampler.cc.o"
  "CMakeFiles/streamkc_core.dir/set_sampler.cc.o.d"
  "CMakeFiles/streamkc_core.dir/small_set.cc.o"
  "CMakeFiles/streamkc_core.dir/small_set.cc.o.d"
  "CMakeFiles/streamkc_core.dir/two_pass.cc.o"
  "CMakeFiles/streamkc_core.dir/two_pass.cc.o.d"
  "libstreamkc_core.a"
  "libstreamkc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
