file(REMOVE_RECURSE
  "CMakeFiles/streamkc_sketch.dir/ams_f2.cc.o"
  "CMakeFiles/streamkc_sketch.dir/ams_f2.cc.o.d"
  "CMakeFiles/streamkc_sketch.dir/count_sketch.cc.o"
  "CMakeFiles/streamkc_sketch.dir/count_sketch.cc.o.d"
  "CMakeFiles/streamkc_sketch.dir/f2_contributing.cc.o"
  "CMakeFiles/streamkc_sketch.dir/f2_contributing.cc.o.d"
  "CMakeFiles/streamkc_sketch.dir/f2_heavy_hitters.cc.o"
  "CMakeFiles/streamkc_sketch.dir/f2_heavy_hitters.cc.o.d"
  "CMakeFiles/streamkc_sketch.dir/hyperloglog.cc.o"
  "CMakeFiles/streamkc_sketch.dir/hyperloglog.cc.o.d"
  "CMakeFiles/streamkc_sketch.dir/l0_estimator.cc.o"
  "CMakeFiles/streamkc_sketch.dir/l0_estimator.cc.o.d"
  "libstreamkc_sketch.a"
  "libstreamkc_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
