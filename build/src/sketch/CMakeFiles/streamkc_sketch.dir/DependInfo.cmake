
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/ams_f2.cc" "src/sketch/CMakeFiles/streamkc_sketch.dir/ams_f2.cc.o" "gcc" "src/sketch/CMakeFiles/streamkc_sketch.dir/ams_f2.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/sketch/CMakeFiles/streamkc_sketch.dir/count_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/streamkc_sketch.dir/count_sketch.cc.o.d"
  "/root/repo/src/sketch/f2_contributing.cc" "src/sketch/CMakeFiles/streamkc_sketch.dir/f2_contributing.cc.o" "gcc" "src/sketch/CMakeFiles/streamkc_sketch.dir/f2_contributing.cc.o.d"
  "/root/repo/src/sketch/f2_heavy_hitters.cc" "src/sketch/CMakeFiles/streamkc_sketch.dir/f2_heavy_hitters.cc.o" "gcc" "src/sketch/CMakeFiles/streamkc_sketch.dir/f2_heavy_hitters.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/sketch/CMakeFiles/streamkc_sketch.dir/hyperloglog.cc.o" "gcc" "src/sketch/CMakeFiles/streamkc_sketch.dir/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/l0_estimator.cc" "src/sketch/CMakeFiles/streamkc_sketch.dir/l0_estimator.cc.o" "gcc" "src/sketch/CMakeFiles/streamkc_sketch.dir/l0_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/streamkc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamkc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
