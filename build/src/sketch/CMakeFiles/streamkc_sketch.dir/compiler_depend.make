# Empty compiler generated dependencies file for streamkc_sketch.
# This may be replaced when dependencies are built.
