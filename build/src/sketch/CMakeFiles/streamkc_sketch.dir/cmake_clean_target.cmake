file(REMOVE_RECURSE
  "libstreamkc_sketch.a"
)
