# Empty compiler generated dependencies file for streamkc_cli.
# This may be replaced when dependencies are built.
