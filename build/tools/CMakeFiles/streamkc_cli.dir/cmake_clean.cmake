file(REMOVE_RECURSE
  "CMakeFiles/streamkc_cli.dir/streamkc_cli.cc.o"
  "CMakeFiles/streamkc_cli.dir/streamkc_cli.cc.o.d"
  "streamkc_cli"
  "streamkc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamkc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
