# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/streamkc_cli" "generate" "--family" "planted" "--m" "512" "--n" "1024" "--k" "16" "--seed" "3" "--out" "/root/repo/build/cli_demo_edges.txt")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_demo_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/streamkc_cli" "stats" "/root/repo/build/cli_demo_edges.txt")
set_tests_properties(cli_stats PROPERTIES  FIXTURES_REQUIRED "cli_demo_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "/root/repo/build/tools/streamkc_cli" "estimate" "/root/repo/build/cli_demo_edges.txt" "--m" "512" "--n" "1024" "--k" "16" "--alpha" "8")
set_tests_properties(cli_estimate PROPERTIES  FIXTURES_REQUIRED "cli_demo_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_budget "/root/repo/build/tools/streamkc_cli" "estimate" "/root/repo/build/cli_demo_edges.txt" "--m" "512" "--n" "1024" "--k" "16" "--budget-kb" "256")
set_tests_properties(cli_estimate_budget PROPERTIES  FIXTURES_REQUIRED "cli_demo_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/streamkc_cli" "report" "/root/repo/build/cli_demo_edges.txt" "--m" "512" "--n" "1024" "--k" "16" "--alpha" "8")
set_tests_properties(cli_report PROPERTIES  FIXTURES_REQUIRED "cli_demo_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_twopass "/root/repo/build/tools/streamkc_cli" "twopass" "/root/repo/build/cli_demo_edges.txt" "--m" "512" "--n" "1024" "--k" "16" "--alpha" "8")
set_tests_properties(cli_twopass PROPERTIES  FIXTURES_REQUIRED "cli_demo_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/streamkc_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
