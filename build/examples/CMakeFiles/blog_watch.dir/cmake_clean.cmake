file(REMOVE_RECURSE
  "CMakeFiles/blog_watch.dir/blog_watch.cpp.o"
  "CMakeFiles/blog_watch.dir/blog_watch.cpp.o.d"
  "blog_watch"
  "blog_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blog_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
