# Empty dependencies file for dsj_game.
# This may be replaced when dependencies are built.
