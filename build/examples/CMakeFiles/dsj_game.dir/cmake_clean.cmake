file(REMOVE_RECURSE
  "CMakeFiles/dsj_game.dir/dsj_game.cpp.o"
  "CMakeFiles/dsj_game.dir/dsj_game.cpp.o.d"
  "dsj_game"
  "dsj_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsj_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
