# Empty dependencies file for graph_coverage.
# This may be replaced when dependencies are built.
