file(REMOVE_RECURSE
  "CMakeFiles/graph_coverage.dir/graph_coverage.cpp.o"
  "CMakeFiles/graph_coverage.dir/graph_coverage.cpp.o.d"
  "graph_coverage"
  "graph_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
