# Empty compiler generated dependencies file for distributed_coverage.
# This may be replaced when dependencies are built.
