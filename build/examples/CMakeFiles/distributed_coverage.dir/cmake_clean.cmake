file(REMOVE_RECURSE
  "CMakeFiles/distributed_coverage.dir/distributed_coverage.cpp.o"
  "CMakeFiles/distributed_coverage.dir/distributed_coverage.cpp.o.d"
  "distributed_coverage"
  "distributed_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
