# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blog_watch "/root/repo/build/examples/blog_watch")
set_tests_properties(example_blog_watch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_coverage "/root/repo/build/examples/graph_coverage")
set_tests_properties(example_graph_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dsj_game "/root/repo/build/examples/dsj_game")
set_tests_properties(example_dsj_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_coverage "/root/repo/build/examples/distributed_coverage")
set_tests_properties(example_distributed_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
