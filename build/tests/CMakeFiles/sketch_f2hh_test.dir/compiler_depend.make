# Empty compiler generated dependencies file for sketch_f2hh_test.
# This may be replaced when dependencies are built.
