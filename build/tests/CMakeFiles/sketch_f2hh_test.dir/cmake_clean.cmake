file(REMOVE_RECURSE
  "CMakeFiles/sketch_f2hh_test.dir/sketch_f2hh_test.cc.o"
  "CMakeFiles/sketch_f2hh_test.dir/sketch_f2hh_test.cc.o.d"
  "sketch_f2hh_test"
  "sketch_f2hh_test.pdb"
  "sketch_f2hh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_f2hh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
