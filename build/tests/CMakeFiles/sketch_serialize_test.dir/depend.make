# Empty dependencies file for sketch_serialize_test.
# This may be replaced when dependencies are built.
