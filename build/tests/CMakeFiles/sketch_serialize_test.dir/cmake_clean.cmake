file(REMOVE_RECURSE
  "CMakeFiles/sketch_serialize_test.dir/sketch_serialize_test.cc.o"
  "CMakeFiles/sketch_serialize_test.dir/sketch_serialize_test.cc.o.d"
  "sketch_serialize_test"
  "sketch_serialize_test.pdb"
  "sketch_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
