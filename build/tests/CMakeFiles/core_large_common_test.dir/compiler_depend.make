# Empty compiler generated dependencies file for core_large_common_test.
# This may be replaced when dependencies are built.
