file(REMOVE_RECURSE
  "CMakeFiles/hash_tabulation_test.dir/hash_tabulation_test.cc.o"
  "CMakeFiles/hash_tabulation_test.dir/hash_tabulation_test.cc.o.d"
  "hash_tabulation_test"
  "hash_tabulation_test.pdb"
  "hash_tabulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_tabulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
