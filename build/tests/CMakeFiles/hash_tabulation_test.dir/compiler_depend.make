# Empty compiler generated dependencies file for hash_tabulation_test.
# This may be replaced when dependencies are built.
