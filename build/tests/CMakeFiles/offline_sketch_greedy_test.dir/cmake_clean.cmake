file(REMOVE_RECURSE
  "CMakeFiles/offline_sketch_greedy_test.dir/offline_sketch_greedy_test.cc.o"
  "CMakeFiles/offline_sketch_greedy_test.dir/offline_sketch_greedy_test.cc.o.d"
  "offline_sketch_greedy_test"
  "offline_sketch_greedy_test.pdb"
  "offline_sketch_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_sketch_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
