file(REMOVE_RECURSE
  "CMakeFiles/core_two_pass_test.dir/core_two_pass_test.cc.o"
  "CMakeFiles/core_two_pass_test.dir/core_two_pass_test.cc.o.d"
  "core_two_pass_test"
  "core_two_pass_test.pdb"
  "core_two_pass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_two_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
