# Empty compiler generated dependencies file for core_two_pass_test.
# This may be replaced when dependencies are built.
