file(REMOVE_RECURSE
  "CMakeFiles/sketch_ams_f2_test.dir/sketch_ams_f2_test.cc.o"
  "CMakeFiles/sketch_ams_f2_test.dir/sketch_ams_f2_test.cc.o.d"
  "sketch_ams_f2_test"
  "sketch_ams_f2_test.pdb"
  "sketch_ams_f2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_ams_f2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
