# Empty dependencies file for sketch_ams_f2_test.
# This may be replaced when dependencies are built.
