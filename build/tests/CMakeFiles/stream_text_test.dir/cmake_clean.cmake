file(REMOVE_RECURSE
  "CMakeFiles/stream_text_test.dir/stream_text_test.cc.o"
  "CMakeFiles/stream_text_test.dir/stream_text_test.cc.o.d"
  "stream_text_test"
  "stream_text_test.pdb"
  "stream_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
