# Empty dependencies file for stream_text_test.
# This may be replaced when dependencies are built.
