# Empty dependencies file for dsj_instance_test.
# This may be replaced when dependencies are built.
