file(REMOVE_RECURSE
  "CMakeFiles/dsj_instance_test.dir/dsj_instance_test.cc.o"
  "CMakeFiles/dsj_instance_test.dir/dsj_instance_test.cc.o.d"
  "dsj_instance_test"
  "dsj_instance_test.pdb"
  "dsj_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsj_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
