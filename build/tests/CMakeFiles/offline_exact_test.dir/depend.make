# Empty dependencies file for offline_exact_test.
# This may be replaced when dependencies are built.
