file(REMOVE_RECURSE
  "CMakeFiles/offline_exact_test.dir/offline_exact_test.cc.o"
  "CMakeFiles/offline_exact_test.dir/offline_exact_test.cc.o.d"
  "offline_exact_test"
  "offline_exact_test.pdb"
  "offline_exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
