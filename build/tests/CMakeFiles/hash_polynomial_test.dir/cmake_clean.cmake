file(REMOVE_RECURSE
  "CMakeFiles/hash_polynomial_test.dir/hash_polynomial_test.cc.o"
  "CMakeFiles/hash_polynomial_test.dir/hash_polynomial_test.cc.o.d"
  "hash_polynomial_test"
  "hash_polynomial_test.pdb"
  "hash_polynomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_polynomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
