# Empty dependencies file for hash_polynomial_test.
# This may be replaced when dependencies are built.
