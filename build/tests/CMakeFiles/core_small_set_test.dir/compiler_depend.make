# Empty compiler generated dependencies file for core_small_set_test.
# This may be replaced when dependencies are built.
