file(REMOVE_RECURSE
  "CMakeFiles/sketch_merge_test.dir/sketch_merge_test.cc.o"
  "CMakeFiles/sketch_merge_test.dir/sketch_merge_test.cc.o.d"
  "sketch_merge_test"
  "sketch_merge_test.pdb"
  "sketch_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
