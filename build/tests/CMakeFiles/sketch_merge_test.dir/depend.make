# Empty dependencies file for sketch_merge_test.
# This may be replaced when dependencies are built.
