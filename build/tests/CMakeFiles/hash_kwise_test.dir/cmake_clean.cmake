file(REMOVE_RECURSE
  "CMakeFiles/hash_kwise_test.dir/hash_kwise_test.cc.o"
  "CMakeFiles/hash_kwise_test.dir/hash_kwise_test.cc.o.d"
  "hash_kwise_test"
  "hash_kwise_test.pdb"
  "hash_kwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_kwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
