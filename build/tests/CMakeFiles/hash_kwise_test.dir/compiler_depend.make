# Empty compiler generated dependencies file for hash_kwise_test.
# This may be replaced when dependencies are built.
