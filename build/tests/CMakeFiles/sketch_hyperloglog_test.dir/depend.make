# Empty dependencies file for sketch_hyperloglog_test.
# This may be replaced when dependencies are built.
