file(REMOVE_RECURSE
  "CMakeFiles/sketch_hyperloglog_test.dir/sketch_hyperloglog_test.cc.o"
  "CMakeFiles/sketch_hyperloglog_test.dir/sketch_hyperloglog_test.cc.o.d"
  "sketch_hyperloglog_test"
  "sketch_hyperloglog_test.pdb"
  "sketch_hyperloglog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_hyperloglog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
