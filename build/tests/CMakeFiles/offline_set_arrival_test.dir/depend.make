# Empty dependencies file for offline_set_arrival_test.
# This may be replaced when dependencies are built.
