# Empty dependencies file for sketch_f2_contributing_test.
# This may be replaced when dependencies are built.
