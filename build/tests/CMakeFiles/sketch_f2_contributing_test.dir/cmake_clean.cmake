file(REMOVE_RECURSE
  "CMakeFiles/sketch_f2_contributing_test.dir/sketch_f2_contributing_test.cc.o"
  "CMakeFiles/sketch_f2_contributing_test.dir/sketch_f2_contributing_test.cc.o.d"
  "sketch_f2_contributing_test"
  "sketch_f2_contributing_test.pdb"
  "sketch_f2_contributing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_f2_contributing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
