
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_large_set_test.cc" "tests/CMakeFiles/core_large_set_test.dir/core_large_set_test.cc.o" "gcc" "tests/CMakeFiles/core_large_set_test.dir/core_large_set_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/streamkc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/streamkc_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/streamkc_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/setsys/CMakeFiles/streamkc_setsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/streamkc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/streamkc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamkc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
