file(REMOVE_RECURSE
  "CMakeFiles/core_large_set_test.dir/core_large_set_test.cc.o"
  "CMakeFiles/core_large_set_test.dir/core_large_set_test.cc.o.d"
  "core_large_set_test"
  "core_large_set_test.pdb"
  "core_large_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_large_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
