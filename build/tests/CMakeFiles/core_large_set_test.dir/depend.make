# Empty dependencies file for core_large_set_test.
# This may be replaced when dependencies are built.
