file(REMOVE_RECURSE
  "CMakeFiles/offline_set_cover_test.dir/offline_set_cover_test.cc.o"
  "CMakeFiles/offline_set_cover_test.dir/offline_set_cover_test.cc.o.d"
  "offline_set_cover_test"
  "offline_set_cover_test.pdb"
  "offline_set_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_set_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
