# Empty compiler generated dependencies file for offline_set_cover_test.
# This may be replaced when dependencies are built.
