file(REMOVE_RECURSE
  "CMakeFiles/offline_baselines_test.dir/offline_baselines_test.cc.o"
  "CMakeFiles/offline_baselines_test.dir/offline_baselines_test.cc.o.d"
  "offline_baselines_test"
  "offline_baselines_test.pdb"
  "offline_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
