file(REMOVE_RECURSE
  "CMakeFiles/core_samplers_test.dir/core_samplers_test.cc.o"
  "CMakeFiles/core_samplers_test.dir/core_samplers_test.cc.o.d"
  "core_samplers_test"
  "core_samplers_test.pdb"
  "core_samplers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_samplers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
