# Empty compiler generated dependencies file for core_samplers_test.
# This may be replaced when dependencies are built.
