# Empty dependencies file for core_dsj_protocol_test.
# This may be replaced when dependencies are built.
