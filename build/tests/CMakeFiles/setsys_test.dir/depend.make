# Empty dependencies file for setsys_test.
# This may be replaced when dependencies are built.
