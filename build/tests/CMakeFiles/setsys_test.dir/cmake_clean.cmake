file(REMOVE_RECURSE
  "CMakeFiles/setsys_test.dir/setsys_test.cc.o"
  "CMakeFiles/setsys_test.dir/setsys_test.cc.o.d"
  "setsys_test"
  "setsys_test.pdb"
  "setsys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
