file(REMOVE_RECURSE
  "CMakeFiles/integration_space_test.dir/integration_space_test.cc.o"
  "CMakeFiles/integration_space_test.dir/integration_space_test.cc.o.d"
  "integration_space_test"
  "integration_space_test.pdb"
  "integration_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
