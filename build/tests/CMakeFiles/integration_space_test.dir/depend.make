# Empty dependencies file for integration_space_test.
# This may be replaced when dependencies are built.
