file(REMOVE_RECURSE
  "CMakeFiles/core_budget_test.dir/core_budget_test.cc.o"
  "CMakeFiles/core_budget_test.dir/core_budget_test.cc.o.d"
  "core_budget_test"
  "core_budget_test.pdb"
  "core_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
