file(REMOVE_RECURSE
  "CMakeFiles/sketch_l0_test.dir/sketch_l0_test.cc.o"
  "CMakeFiles/sketch_l0_test.dir/sketch_l0_test.cc.o.d"
  "sketch_l0_test"
  "sketch_l0_test.pdb"
  "sketch_l0_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_l0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
