// Experiment E12 (DESIGN.md): throughput micro-benchmarks (google-benchmark)
// for every sketch primitive and the full pipeline's per-edge cost.

#include <benchmark/benchmark.h>

#include "core/estimate_max_cover.h"
#include "core/oracle.h"
#include "hash/kwise_hash.h"
#include "hash/tabulation_hash.h"
#include "setsys/generators.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/l0_estimator.h"

namespace streamkc {
namespace {

void BM_KWiseHash(benchmark::State& state) {
  KWiseHash h(static_cast<uint32_t>(state.range(0)), 1);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Map(++x));
  }
}
BENCHMARK(BM_KWiseHash)->Arg(2)->Arg(4)->Arg(8)->Arg(48);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(1);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Map(++x));
  }
}
BENCHMARK(BM_TabulationHash);

void BM_L0Add(benchmark::State& state) {
  L0Estimator l0({.num_mins = 64, .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    l0.Add(++x);
  }
  benchmark::DoNotOptimize(l0.Estimate());
}
BENCHMARK(BM_L0Add);

void BM_AmsF2Add(benchmark::State& state) {
  AmsF2Sketch f2({.rows = 5, .cols = 16, .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    f2.Add(++x % 1000);
  }
  benchmark::DoNotOptimize(f2.Estimate());
}
BENCHMARK(BM_AmsF2Add);

void BM_CountSketchAdd(benchmark::State& state) {
  CountSketch cs({.depth = 5,
                  .width = static_cast<uint32_t>(state.range(0)),
                  .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    cs.Add(++x % 4096);
  }
  benchmark::DoNotOptimize(cs.PointQuery(7));
}
BENCHMARK(BM_CountSketchAdd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_F2HeavyHittersAdd(benchmark::State& state) {
  F2HeavyHitters hh({.phi = 1.0 / static_cast<double>(state.range(0)),
                     .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    hh.Add(++x % 4096);
  }
  benchmark::DoNotOptimize(hh.EstimateF2());
}
BENCHMARK(BM_F2HeavyHittersAdd)->Arg(16)->Arg(256);

void BM_F2ContributingAdd(benchmark::State& state) {
  F2Contributing fc({.gamma = 0.05,
                     .max_class_size = static_cast<uint64_t>(state.range(0)),
                     .domain_size = 1 << 16,
                     .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    fc.Add(++x % 65536);
  }
  benchmark::DoNotOptimize(fc.num_levels());
}
BENCHMARK(BM_F2ContributingAdd)->Arg(64)->Arg(1 << 14);

void BM_OracleProcess(benchmark::State& state) {
  Params p = Params::Practical(1 << 12, 1 << 12, 32, 8);
  Oracle::Config oc;
  oc.params = p;
  oc.universe_size = 1 << 12;
  oc.seed = 1;
  Oracle oracle(oc);
  uint64_t x = 0;
  for (auto _ : state) {
    oracle.Process(Edge{x % 4096, (x * 2654435761u) % 4096});
    ++x;
  }
  benchmark::DoNotOptimize(oracle.MemoryBytes());
}
BENCHMARK(BM_OracleProcess);

void BM_EstimateMaxCoverProcess(benchmark::State& state) {
  Params p = Params::Practical(1 << 12, 1 << 12, 32,
                               static_cast<double>(state.range(0)));
  EstimateMaxCover::Config c;
  c.params = p;
  c.seed = 1;
  EstimateMaxCover est(c);
  uint64_t x = 0;
  for (auto _ : state) {
    est.Process(Edge{x % 4096, (x * 2654435761u) % 4096});
    ++x;
  }
  benchmark::DoNotOptimize(est.MemoryBytes());
}
BENCHMARK(BM_EstimateMaxCoverProcess)->Arg(4)->Arg(16)->Arg(64);

void BM_EndToEndPlanted(benchmark::State& state) {
  auto inst = PlantedCover(1024, 2048, 16, 0.5, 5, 1);
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  for (auto _ : state) {
    EstimateMaxCover::Config c;
    c.params = Params::Practical(1024, 2048, 16, 8);
    c.seed = 1;
    EstimateMaxCover est(c);
    for (const Edge& e : edges) est.Process(e);
    benchmark::DoNotOptimize(est.Finalize().estimate);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_EndToEndPlanted)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace streamkc

BENCHMARK_MAIN();
