// Experiment E12 (DESIGN.md): throughput micro-benchmarks (google-benchmark)
// for every sketch primitive and the full pipeline's per-edge cost, plus the
// hash-kernel table: MapFoldedBatch keys/s for each dispatchable kernel
// (scalar, avx2) at representative degrees, emitted as BENCH_micro.json for
// compare_bench.py. The table runs before the google-benchmark suite so
// `--benchmark_filter=^$` yields a fast kernel-only pass for the tier-1
// perf smoke.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/estimate_max_cover.h"
#include "core/oracle.h"
#include "hash/kernel_dispatch.h"
#include "hash/kwise_hash.h"
#include "hash/tabulation_hash.h"
#include "setsys/generators.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/l0_estimator.h"
#include "util/random.h"

namespace streamkc {
namespace {

void BM_KWiseHash(benchmark::State& state) {
  KWiseHash h(static_cast<uint32_t>(state.range(0)), 1);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Map(++x));
  }
}
BENCHMARK(BM_KWiseHash)->Arg(2)->Arg(4)->Arg(8)->Arg(48);

// Batched Horner through the runtime-dispatched kernel (whatever
// kernel_dispatch resolves: forced > STREAMKC_HASH_KERNEL > CPUID auto).
// The committed-baseline numbers live in the hash-kernel table instead;
// this entry exists for ad-hoc `--benchmark_filter=FoldedBatch` runs.
void BM_KWiseHashFoldedBatch(benchmark::State& state) {
  const size_t kBatch = 8192;
  KWiseHash h(static_cast<uint32_t>(state.range(0)), 1);
  Rng rng(7);
  std::vector<uint64_t> in(kBatch), out(kBatch);
  for (auto& v : in) {
    v = rng.Next() & ((1ull << 61) - 1);
    if (v >= kMersennePrime61) v -= kMersennePrime61;
  }
  for (auto _ : state) {
    h.MapFoldedBatch(in.data(), out.data(), kBatch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_KWiseHashFoldedBatch)->Arg(2)->Arg(4)->Arg(48);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(1);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Map(++x));
  }
}
BENCHMARK(BM_TabulationHash);

void BM_L0Add(benchmark::State& state) {
  L0Estimator l0({.num_mins = 64, .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    l0.Add(++x);
  }
  benchmark::DoNotOptimize(l0.Estimate());
}
BENCHMARK(BM_L0Add);

void BM_AmsF2Add(benchmark::State& state) {
  AmsF2Sketch f2({.rows = 5, .cols = 16, .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    f2.Add(++x % 1000);
  }
  benchmark::DoNotOptimize(f2.Estimate());
}
BENCHMARK(BM_AmsF2Add);

void BM_CountSketchAdd(benchmark::State& state) {
  CountSketch cs({.depth = 5,
                  .width = static_cast<uint32_t>(state.range(0)),
                  .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    cs.Add(++x % 4096);
  }
  benchmark::DoNotOptimize(cs.PointQuery(7));
}
BENCHMARK(BM_CountSketchAdd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_F2HeavyHittersAdd(benchmark::State& state) {
  F2HeavyHitters hh({.phi = 1.0 / static_cast<double>(state.range(0)),
                     .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    hh.Add(++x % 4096);
  }
  benchmark::DoNotOptimize(hh.EstimateF2());
}
BENCHMARK(BM_F2HeavyHittersAdd)->Arg(16)->Arg(256);

void BM_F2ContributingAdd(benchmark::State& state) {
  F2Contributing fc({.gamma = 0.05,
                     .max_class_size = static_cast<uint64_t>(state.range(0)),
                     .domain_size = 1 << 16,
                     .seed = 1});
  uint64_t x = 0;
  for (auto _ : state) {
    fc.Add(++x % 65536);
  }
  benchmark::DoNotOptimize(fc.num_levels());
}
BENCHMARK(BM_F2ContributingAdd)->Arg(64)->Arg(1 << 14);

void BM_OracleProcess(benchmark::State& state) {
  Params p = Params::Practical(1 << 12, 1 << 12, 32, 8);
  Oracle::Config oc;
  oc.params = p;
  oc.universe_size = 1 << 12;
  oc.seed = 1;
  Oracle oracle(oc);
  uint64_t x = 0;
  for (auto _ : state) {
    oracle.Process(Edge{x % 4096, (x * 2654435761u) % 4096});
    ++x;
  }
  benchmark::DoNotOptimize(oracle.MemoryBytes());
}
BENCHMARK(BM_OracleProcess);

void BM_EstimateMaxCoverProcess(benchmark::State& state) {
  Params p = Params::Practical(1 << 12, 1 << 12, 32,
                               static_cast<double>(state.range(0)));
  EstimateMaxCover::Config c;
  c.params = p;
  c.seed = 1;
  EstimateMaxCover est(c);
  uint64_t x = 0;
  for (auto _ : state) {
    est.Process(Edge{x % 4096, (x * 2654435761u) % 4096});
    ++x;
  }
  benchmark::DoNotOptimize(est.MemoryBytes());
}
BENCHMARK(BM_EstimateMaxCoverProcess)->Arg(4)->Arg(16)->Arg(64);

void BM_EndToEndPlanted(benchmark::State& state) {
  auto inst = PlantedCover(1024, 2048, 16, 0.5, 5, 1);
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  for (auto _ : state) {
    EstimateMaxCover::Config c;
    c.params = Params::Practical(1024, 2048, 16, 8);
    c.seed = 1;
    EstimateMaxCover est(c);
    for (const Edge& e : edges) est.Process(e);
    benchmark::DoNotOptimize(est.Finalize().estimate);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_EndToEndPlanted)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Hash-kernel table: scalar vs avx2 MapFoldedBatch throughput per degree,
// measured through the SHIPPED path (KWiseHash::MapFoldedBatch, batch
// precondition scan included) with the kernel pinned via ForceHashKernel.
//
// Gating contract (compare_bench.py): the per-kernel `_eps` rows warn on
// drift like every throughput metric; `hash_kernel_ok` is the self-judging
// verdict — when the avx2 kernel is dispatchable it must beat scalar by the
// committed floor (SIMD speedup is arithmetic, not thread scaling, so it
// holds even on one core); when avx2 is not dispatchable (non-x86, or the
// -mno-avx2 CI leg) the floor is vacuous and ok stays 1, with the `_eps`
// rows reported as 0 so the baseline shape still matches.
// ---------------------------------------------------------------------------

// Best-of-3 wall-clock of `rounds` full-buffer MapFoldedBatch calls.
double MeasureKeysPerSecond(const KWiseHash& h, const std::vector<uint64_t>& in,
                            std::vector<uint64_t>* out, size_t rounds) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < rounds; ++r) {
      h.MapFoldedBatch(in.data(), out->data(), in.size());
    }
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    double eps = static_cast<double>(rounds * in.size()) / std::max(secs, 1e-9);
    best = std::max(best, eps);
  }
  return best;
}

uint64_t Checksum(const std::vector<uint64_t>& v) {
  uint64_t x = 0;
  for (uint64_t e : v) x ^= e + (x << 1);
  return x;
}

int RunHashKernelTable(const std::string& bench_out) {
  using bench::Fmt;
  const bool small = bench::SmallScale();
  const size_t kKeys = 8192;
  const uint64_t base_total = small ? 4'000'000ull : 40'000'000ull;
  const double kFloor = 1.5;
  const bool avx2 = HashKernelAvailable(HashKernel::kAvx2);

  bench::Banner(
      "E12a: Mersenne hash kernels (MapFoldedBatch, runtime dispatch)",
      "batched Horner over GF(2^61-1) is multiply-bound; the AVX2 limb "
      "kernel must be bit-identical to scalar and >= 1.5x faster");

  bench::BenchReport report("micro", small ? "small" : "full");
  report.SetConfig("hash_keys", static_cast<double>(kKeys));
  report.SetConfig("hash_base_total", static_cast<double>(base_total));
  report.SetNote("hash-kernel table; _eps rows are 0 when avx2 is not "
                 "dispatchable on the runner");

  Rng rng(20260809);
  std::vector<uint64_t> in(kKeys), out(kKeys);
  for (auto& v : in) {
    v = rng.Next() & ((1ull << 61) - 1);
    if (v >= kMersennePrime61) v -= kMersennePrime61;
  }

  bench::Table table({"degree", "scalar keys/s", "avx2 keys/s", "speedup",
                      "bit-identical"});
  double max_speedup = 0;
  for (uint32_t d : {2u, 4u, 48u}) {
    KWiseHash h(d, 1234);
    // Fixed per-degree work: Horner cost is (d-1) multiplies per key, so
    // scale the key count by 2/d to keep each row's wall-clock comparable.
    const size_t target =
        std::max<uint64_t>(kKeys, base_total * 2 / std::max(d, 2u));
    const size_t rounds = std::max<size_t>(1, target / kKeys);

    ForceHashKernel(HashKernel::kScalar);
    h.MapFoldedBatch(in.data(), out.data(), kKeys);  // warm up
    double scalar_eps = MeasureKeysPerSecond(h, in, &out, rounds);
    const uint64_t scalar_sum = Checksum(out);

    double avx2_eps = 0;
    bool identical = true;
    if (avx2) {
      ForceHashKernel(HashKernel::kAvx2);
      h.MapFoldedBatch(in.data(), out.data(), kKeys);
      avx2_eps = MeasureKeysPerSecond(h, in, &out, rounds);
      identical = Checksum(out) == scalar_sum;
    }
    ResetHashKernel();

    const double speedup = scalar_eps > 0 ? avx2_eps / scalar_eps : 0;
    max_speedup = std::max(max_speedup, speedup);
    table.AddRow({Fmt("%u", d), Fmt("%.2fM", scalar_eps / 1e6),
                  avx2 ? Fmt("%.2fM", avx2_eps / 1e6) : "n/a",
                  avx2 ? Fmt("%.2fx", speedup) : "n/a",
                  identical ? "yes" : "NO"});
    report.SetMetric(Fmt("hash_d%u_scalar_eps", d), scalar_eps);
    report.SetMetric(Fmt("hash_d%u_avx2_eps", d), avx2_eps);
    report.SetMetric(Fmt("hash_d%u_speedup", d), speedup);
    if (!identical) {
      std::printf("BIT-IDENTITY VIOLATION at degree %u\n", d);
      return 1;
    }
  }
  table.Print();

  // Self-judging speedup gate, keyed on the best degree: low degrees are
  // load/store-bound so the SIMD win concentrates where Horner dominates.
  const bool ok = !avx2 || max_speedup >= kFloor;
  std::printf(
      "\nactive kernel (auto): %s; avx2 dispatchable: %s; best speedup "
      "%.2fx (floor %.1fx) -> %s\n",
      HashKernelName(ActiveHashKernel()), avx2 ? "yes" : "no", max_speedup,
      kFloor, ok ? "ok" : "REGRESSION");
  report.SetMetric("hash_kernel_avx2_available", avx2 ? 1 : 0);
  report.SetMetric("hash_kernel_speedup", max_speedup);
  report.SetMetric("hash_kernel_floor", kFloor);
  report.SetMetric("hash_kernel_ok", ok ? 1 : 0);
  if (!ok) {
    std::printf("HASH KERNEL SPEEDUP BELOW FLOOR\n");
    return 1;
  }

  report.Write(bench_out);
  return 0;
}

}  // namespace

int MicroMain(int argc, char** argv) {
  std::string bench_out = bench::BenchOutPath(argc, argv);
  int rc = RunHashKernelTable(bench_out);
  if (rc != 0) return rc;

  // Strip the harness-local flag before handing argv to google-benchmark
  // (it rejects unrecognized flags).
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-out") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace streamkc

int main(int argc, char** argv) { return streamkc::MicroMain(argc, argv); }
