// Experiment E3 (DESIGN.md): the Section-5 lower bound, empirically.
//
// Part A verifies the reduction itself (Claims 5.3 / 5.4): No instances of
// r-player DSJ(m) reduce to Max 1-Cover instances with OPT = r, Yes
// instances to OPT = 1 — so any α < r approximation separates them.
//
// Part B runs the O(m/α²)-space L2-sketch distinguisher the paper describes
// ("the specific hard instances ... can be distinguished ... using space
// O(m/α²)") at the design budget and at fractions of it. Accuracy should be
// ~1.0 at the Θ(m/r²) point and collapse toward coin-flipping (0.5) well
// below it — the empirical signature of the Ω(m/α²) bound (Theorem 3.3).
//
// Part C sweeps r at fixed m, reporting the distinguisher's measured bytes
// against m/r²: the 1/r² scaling of the space frontier.

#include <cstdio>

#include "bench_util.h"
#include "core/dsj_protocol.h"
#include "setsys/dsj_instance.h"

namespace streamkc {
namespace {

void PartA_Reduction() {
  bench::Banner("E3 part A: DSJ -> Max 1-Cover reduction (Claims 5.3/5.4)",
                "No-case OPT = r; Yes-case OPT = 1");
  bench::Table table({"m", "r", "case", "reduced OPT", "expected"});
  for (uint64_t r : {8ull, 16ull, 32ull}) {
    const uint64_t m = 2048;
    for (bool no_case : {false, true}) {
      DsjInstance dsj = MakeDsjInstance(m, r, no_case, 11 + r);
      uint64_t opt = DsjReducedOptimalCoverage(dsj);
      table.AddRow({bench::Fmt("%llu", (unsigned long long)m),
                    bench::Fmt("%llu", (unsigned long long)r),
                    no_case ? "No" : "Yes",
                    bench::Fmt("%llu", (unsigned long long)opt),
                    no_case ? bench::Fmt("%llu", (unsigned long long)r) : "1"});
    }
  }
  table.Print();
}

void PartB_SpaceCliff() {
  bench::Banner(
      "E3 part B: distinguisher accuracy vs space budget",
      "solvable in O(m/alpha^2) space; impossible in o(m/alpha^2) "
      "(Theorem 3.3)");
  const uint64_t m = bench::SmallScale() ? 1 << 12 : 1 << 14;
  const uint64_t r = 16;
  const int trials = bench::SmallScale() ? 8 : 24;
  bench::Table table(
      {"space_factor", "sketch_KB", "accuracy", "vs design m/r^2"});
  for (double factor : {4.0, 1.0, 1.0 / 4, 1.0 / 16, 1.0 / 64, 1.0 / 256}) {
    int correct = 0;
    size_t bytes = 0;
    for (int t = 0; t < trials; ++t) {
      for (bool no_case : {false, true}) {
        DsjInstance dsj = MakeDsjInstance(m, r, no_case, 100 + t);
        correct += DsjExperimentCorrect(dsj, factor, 7 + t, &bytes);
      }
    }
    double acc = static_cast<double>(correct) / (2 * trials);
    table.AddRow({bench::Fmt("%.4f", factor), bench::Fmt("%zu", bytes >> 10),
                  bench::Fmt("%.3f", acc),
                  factor >= 1.0 ? "at/above bound" : "below bound"});
  }
  table.Print();
  std::printf(
      "Reading: at or above the Theta(m/r^2) design budget accuracy is\n"
      "~1.0; starving the sketch far below it collapses accuracy toward\n"
      "0.5 (chance) — the behavior the Omega(m/alpha^2) bound mandates.\n");
}

void PartC_RSweep() {
  bench::Banner("E3 part C: distinguisher space vs r (fixed m)",
                "space frontier scales as m/r^2");
  const uint64_t m = 1 << 16;
  bench::Table table({"r", "sketch_KB", "bytes*r^2/m"});
  for (uint64_t r : {8ull, 16ull, 32ull, 64ull, 128ull}) {
    DsjInstance dsj = MakeDsjInstance(m, r, true, 5);
    size_t bytes = 0;
    DsjExperimentCorrect(dsj, 1.0, 3, &bytes);
    table.AddRow({bench::Fmt("%llu", (unsigned long long)r),
                  bench::Fmt("%zu", bytes >> 10),
                  bench::Fmt("%.0f", static_cast<double>(bytes) * r * r / m)});
  }
  table.Print();
  std::printf(
      "Reading: bytes*r^2/m stays near-constant — the sketch that solves\n"
      "the hard instances uses Theta(m/r^2) space, matching the upper\n"
      "bound side of the tight trade-off.\n");
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::PartA_Reduction();
  streamkc::PartB_SpaceCliff();
  streamkc::PartC_RSweep();
  return 0;
}
