// Experiment E7 (DESIGN.md): universe reduction (Section 3.1, Lemma 3.5).
//
// Lemma 3.5: a 4-wise independent h : U → [z] maps any set S with |S| ≥ z
// (z ≥ 32) to at least z/4 pseudo-elements with probability ≥ 3/4. The
// bench measures the empirical success rate and the mean preserved fraction
// across z and |S|/z ratios, plus the end-to-end effect: coverage of a
// k-cover before and after reduction.

#include <cstdio>
#include <unordered_set>

#include "bench_util.h"
#include "core/universe_reduction.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

void Lemma35Table() {
  bench::Banner("E7: universe reduction (Lemma 3.5)",
                "Pr[|h(S)| >= z/4] >= 3/4 for |S| >= z >= 32, h 4-wise");
  const int trials = bench::SmallScale() ? 100 : 400;
  bench::Table table({"z", "|S|/z", "Pr[|h(S)|>=z/4]", "mean |h(S)|/z",
                      "bound"});
  for (uint64_t z : {32ull, 64ull, 256ull, 1024ull}) {
    for (double ratio : {1.0, 2.0, 8.0}) {
      uint64_t s_size = static_cast<uint64_t>(ratio * static_cast<double>(z));
      int success = 0;
      double frac_sum = 0;
      for (int t = 0; t < trials; ++t) {
        UniverseReduction ur(z, 999 * z + t);
        std::unordered_set<ElementId> image;
        for (ElementId e = 0; e < s_size; ++e) image.insert(ur.Map(e));
        success += (image.size() * 4 >= z);
        frac_sum += static_cast<double>(image.size()) / static_cast<double>(z);
      }
      table.AddRow({bench::Fmt("%llu", (unsigned long long)z),
                    bench::Fmt("%.0f", ratio),
                    bench::Fmt("%.3f", success / static_cast<double>(trials)),
                    bench::Fmt("%.2f", frac_sum / trials), ">= 0.75"});
    }
  }
  table.Print();
  std::printf(
      "Reading: success probability is >= 3/4 everywhere (in fact ~1 —\n"
      "Lemma 3.5 is loose), and the preserved fraction approaches the\n"
      "balls-in-bins limit 1 - 1/e ≈ 0.63 at |S| = z.\n");
}

void EndToEndCoveragePreservation() {
  bench::Banner("E7 (cont.): reduction preserves k-cover coverage",
                "coverage never increases; a guess z <= OPT keeps >= z/4");
  auto inst = PlantedCover(512, 4096, 16, 0.5, 5, 3);
  uint64_t opt = inst.planted_coverage;  // 2048
  const int trials = 50;
  bench::Table table({"guess z", "mean |h(C(OPT))|", "z/4 target",
                      "Pr[>= z/4]"});
  for (uint64_t z : {64ull, 256ull, 1024ull, 2048ull}) {
    double sum = 0;
    int ok = 0;
    for (int t = 0; t < trials; ++t) {
      UniverseReduction ur(z, 777 + t);
      std::unordered_set<ElementId> image;
      for (SetId s : inst.planted_solution) {
        for (ElementId e : inst.system.set(s)) image.insert(ur.Map(e));
      }
      sum += static_cast<double>(image.size());
      ok += (image.size() * 4 >= z);
    }
    table.AddRow({bench::Fmt("%llu (OPT=%llu)", (unsigned long long)z,
                             (unsigned long long)opt),
                  bench::Fmt("%.0f", sum / trials),
                  bench::Fmt("%.0f", z / 4.0),
                  bench::Fmt("%.2f", ok / static_cast<double>(trials))});
  }
  table.Print();
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::Lemma35Table();
  streamkc::EndToEndCoveragePreservation();
  return 0;
}
