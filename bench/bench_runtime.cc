// Thread-scaling curve for the sharded ingestion runtime (src/runtime).
//
// Workload: CoverageSketchState (KMV + HLL + AMS per edge — the trivial-
// branch per-edge work profile) over a synthesized edge stream, at shard
// counts {1, 2, 4, 8}. Reports edges/s, speedup vs the in-line single-
// threaded pass, producer stall counts and sketch space (per-shard sum vs
// merged), and verifies the deterministic-merge contract on every row.
// A second table scales the multi-producer front-end (P∈{1,2,4,8} × 8
// shards through the ring lattice) and gates the 8-producer speedup
// against a hardware-aware floor (producer_scaling_ok). A third table
// scales the multi-PROCESS reduction tree (src/dist, W∈{1,2,4} forked
// workers; 8 at full scale) over the same edges, requires the tree-merged
// state to serialize bit-identical to the in-line batched pass, and gates
// the top-W speedup the same way (worker_scaling_ok).
//
// NOTE on reading the speedup column: shard workers are real OS threads, so
// the curve only rises on hardware with that many physical cores. On a
// single-core host every configuration time-slices one core and the pipeline
// overhead (queue hand-off, context switches) makes speedup ≈ 1 or below —
// the determinism and stall columns are still meaningful there. Record
// curves from multi-core hardware in EXPERIMENTS.md.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dist/process_tree.h"
#include "runtime/edge_batch.h"
#include "runtime/sharded_pipeline.h"
#include "runtime/sketch_states.h"
#include "stream/edge_stream.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace streamkc {
namespace {

using bench::Fmt;
using bench::Table;

std::vector<Edge> SynthesizeEdges(size_t count, uint64_t seed) {
  // Zipf-ish element skew via a double hash keeps the distinct structure
  // realistic without materializing a set system at this scale.
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = SplitMix64(seed + i);
    edges.push_back(
        Edge{h % (1u << 16), SplitMix64(h) % (1u << 22)});
  }
  return edges;
}

int Main(int argc, char** argv) {
  // Resolve (and writability-probe) the metrics sink up front: an
  // unwritable path must fail before the experiment runs, not after.
  const std::string metrics_out = bench::MetricsOutPath(argc, argv);
  const std::string bench_out = bench::BenchOutPath(argc, argv);
  const size_t num_edges = bench::SmallScale() ? 1'000'000 : 10'000'000;
  constexpr uint32_t kBatchSize = 8192;
  bench::BenchReport report("runtime", bench::SmallScale() ? "small" : "full");
  report.SetConfig("num_edges", static_cast<double>(num_edges));
  report.SetConfig("batch_size", kBatchSize);
  bench::Banner(
      "Runtime thread scaling: sharded ingestion + mergeable-sketch reduction",
      "mergeable sketches admit embarrassingly parallel ingestion; the "
      "merged state is deterministic and equals the 1-thread state");
  std::printf("edges: %zu, hardware threads: %u\n\n", num_edges,
              std::thread::hardware_concurrency());

  std::vector<Edge> edges = SynthesizeEdges(num_edges, 7);
  CoverageSketchState::Config cfg;

  // In-line single-threaded reference, per-edge Process() path (no pipeline
  // machinery, no batching): the pre-batching cost model.
  Stopwatch sw;
  CoverageSketchState reference(cfg);
  for (const Edge& e : edges) reference.Process(e);
  double base_s = sw.ElapsedSeconds();
  double base_eps = static_cast<double>(num_edges) / base_s;
  double ref_l0 = reference.covered_l0.Estimate();
  double ref_hll = reference.covered_hll.Estimate();
  std::printf("in-line per-edge reference: %.2fM edges/s (%.2fs)\n",
              base_eps / 1e6, base_s);
  report.SetMetric("inline_per_edge_eps", base_eps);

  // In-line single-threaded BATCHED pass: same state, fed through the
  // EdgeBatch prefold + ProcessBatch entry — isolates the hash-once +
  // interleaved-Horner win from any threading effect. The estimates must be
  // bit-identical to the per-edge pass (same seeds, same admission order).
  sw.Restart();
  CoverageSketchState batched(cfg);
  {
    EdgeBatch batch;
    for (size_t i = 0; i < num_edges; i += kBatchSize) {
      size_t m = std::min<size_t>(kBatchSize, num_edges - i);
      batch.Clear();
      batch.edges.assign(edges.begin() + i, edges.begin() + i + m);
      batch.Prefold();
      batched.ProcessBatch(batch.View());
    }
  }
  double batch_s = sw.ElapsedSeconds();
  double batch_eps = static_cast<double>(num_edges) / batch_s;
  bool batch_identical = batched.covered_l0.Estimate() == ref_l0 &&
                         batched.covered_hll.Estimate() == ref_hll;
  std::printf(
      "in-line batched:            %.2fM edges/s (%.2fs)  %.2fx vs per-edge  "
      "identical estimates: %s\n\n",
      batch_eps / 1e6, batch_s, batch_eps / base_eps,
      batch_identical ? "yes" : "NO");
  if (!batch_identical) {
    std::printf("BATCH/PER-EDGE DIVERGENCE in single-threaded pass\n");
    return 1;
  }
  report.SetMetric("inline_batched_eps", batch_eps);
  report.SetMetric("inline_batch_speedup", batch_eps / base_eps);

  Table table({"shards", "edges/s", "speedup", "stalls", "shard KiB",
               "merged KiB", "deterministic"});
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedPipelineOptions opts;
    opts.num_shards = shards;
    opts.batch_size = kBatchSize;
    ShardedPipeline<CoverageSketchState> pipe(
        opts, [&](uint32_t) { return CoverageSketchState(cfg); });
    VectorEdgeStream stream(edges);
    CoverageSketchState merged = pipe.Run(stream);
    const RuntimeMetrics& m = pipe.metrics();
    m.PublishTo(&MetricsRegistry::Global());  // last shard count wins
    double eps = m.EdgesPerSecond();
    // The contract every row must keep: merged estimates equal the in-line
    // single-threaded ones exactly (same seeds, union/linear reductions).
    bool deterministic = merged.covered_l0.Estimate() == ref_l0 &&
                         merged.covered_hll.Estimate() == ref_hll;
    table.AddRow({Fmt("%u", shards), Fmt("%.2fM", eps / 1e6),
                  Fmt("%.2fx", eps / base_eps),
                  Fmt("%llu", (unsigned long long)m.queue_full_stalls.load()),
                  Fmt("%llu", (unsigned long long)(m.TotalStateBytes() >> 10)),
                  Fmt("%llu",
                      (unsigned long long)(m.merged_state_bytes.load() >> 10)),
                  deterministic ? "yes" : "NO"});
    report.SetMetric(Fmt("sharded_%u_eps", shards), eps);
    report.SetMetric(Fmt("sharded_%u_speedup", shards), eps / base_eps);
    if (!deterministic) {
      std::printf("DETERMINISM VIOLATION at %u shards\n", shards);
      return 1;
    }
  }
  report.SetMetric("deterministic", 1);
  table.Print();
  std::printf(
      "\nSpeedup is bounded by physical cores; per-shard space is constant "
      "(seed-coordinated replicas), so total space grows linearly with "
      "shards until the fold collapses it back to one sketch.\n");

  // Producer scaling: the multi-producer front-end at a fixed 8 shards.
  // The single-producer rows above are parse/route-bound on one thread;
  // this table splits the stream into P even spans (EdgeSpanStream, the
  // in-memory analogue of SegmentedTextStream) and feeds them through the
  // P×8 ring lattice. Determinism must hold on every row — the merged
  // estimates are multiset functions, independent of P.
  std::printf("\n");
  Table ptable({"producers", "edges/s", "speedup", "stalls", "recycled",
                "deterministic"});
  double producers_1_eps = 0;
  double producers_8_eps = 0;
  for (uint32_t producers : {1u, 2u, 4u, 8u}) {
    ShardedPipelineOptions opts;
    opts.num_shards = 8;
    opts.num_producers = producers;
    opts.batch_size = kBatchSize;
    ShardedPipeline<CoverageSketchState> pipe(
        opts, [&](uint32_t) { return CoverageSketchState(cfg); });
    CoverageSketchState merged = pipe.RunSegmented(
        [&](uint32_t p) { return MakeEdgeSpanSegment(edges, p, producers); });
    const RuntimeMetrics& m = pipe.metrics();
    double eps = m.EdgesPerSecond();
    bool deterministic = merged.covered_l0.Estimate() == ref_l0 &&
                         merged.covered_hll.Estimate() == ref_hll;
    ptable.AddRow(
        {Fmt("%ux8", producers), Fmt("%.2fM", eps / 1e6),
         Fmt("%.2fx", eps / base_eps),
         Fmt("%llu", (unsigned long long)m.queue_full_stalls.load()),
         Fmt("%llu", (unsigned long long)m.TotalBatchesRecycled()),
         deterministic ? "yes" : "NO"});
    report.SetMetric(Fmt("producers_%u_eps", producers), eps);
    if (producers == 1) producers_1_eps = eps;
    if (producers == 8) producers_8_eps = eps;
    if (!deterministic) {
      std::printf("DETERMINISM VIOLATION at %u producers\n", producers);
      return 1;
    }
  }
  ptable.Print();

  // Hardware-aware scaling gate. The ROADMAP target (≥6×, acceptance ≥4×)
  // is only observable with 8+ real cores; on smaller hosts every
  // configuration time-slices the same cores, so the floor degrades to a
  // sanity check that the lattice at least doesn't collapse throughput.
  // compare_bench.py hard-fails any committed *_ok metric that is not 1.
  const uint32_t hc = std::thread::hardware_concurrency();
  const double scaling_floor = hc >= 8 ? 4.0 : hc >= 4 ? 2.0 : hc >= 2 ? 1.0
                                                                       : 0.4;
  const double producer_scaling =
      producers_1_eps > 0 ? producers_8_eps / producers_1_eps : 0.0;
  const bool scaling_ok = producer_scaling >= scaling_floor;
  std::printf(
      "\n8-producer scaling vs 1-producer (8 shards): %.2fx "
      "(floor %.1fx on %u hardware threads) -> %s\n",
      producer_scaling, scaling_floor, hc, scaling_ok ? "ok" : "REGRESSION");
  report.SetMetric("producer_scaling", producer_scaling);
  report.SetMetric("producer_scaling_floor", scaling_floor);
  report.SetMetric("producer_scaling_ok", scaling_ok ? 1 : 0);
  if (!scaling_ok) {
    std::printf("PRODUCER SCALING BELOW FLOOR\n");
    return 1;
  }

  // Worker-process scaling: the multi-process reduction tree (src/dist) at
  // W forked workers over a 16-segment span split of the same edges (the
  // in-memory analogue of the CLI's file split; segments are shared
  // copy-on-write after fork). The contract is stronger than the thread
  // rows': the tree-merged state must serialize BIT-IDENTICAL to the
  // in-line batched pass, not just estimate-equal — states cross a process
  // boundary here, so representation drift would hide behind equal
  // estimates.
  std::printf("\n");
  std::string inline_blob;
  {
    std::ostringstream os;
    batched.Save(os);
    inline_blob = os.str();
  }
  constexpr uint32_t kDistSegments = 16;
  std::vector<uint32_t> worker_counts = {1, 2, 4};
  if (!bench::SmallScale()) worker_counts.push_back(8);
  Table wtable({"workers", "edges/s", "speedup", "shipped KiB", "depth",
                "bit-identical"});
  double workers_1_eps = 0;
  double workers_max_eps = 0;
  uint32_t workers_max = 0;
  for (uint32_t workers : worker_counts) {
    DistOptions opts;
    opts.num_workers = workers;
    opts.batch_size = kBatchSize;
    ProcessReductionTree<CoverageSketchState> tree(
        opts, [&](uint32_t) { return CoverageSketchState(cfg); });
    CoverageSketchState merged = tree.Run(
        kDistSegments,
        [&](uint32_t s) { return MakeEdgeSpanSegment(edges, s, kDistSegments); });
    const DistMetrics& dm = tree.metrics();
    double eps = dm.EdgesPerSecond();
    std::ostringstream os;
    merged.Save(os);
    bool identical = os.str() == inline_blob;
    wtable.AddRow(
        {Fmt("%u", workers), Fmt("%.2fM", eps / 1e6),
         Fmt("%.2fx", eps / base_eps),
         Fmt("%llu", (unsigned long long)(dm.TotalBytesShipped() >> 10)),
         Fmt("%u", dm.tree.depth), identical ? "yes" : "NO"});
    report.SetMetric(Fmt("workers_%u_eps", workers), eps);
    if (workers == 1) workers_1_eps = eps;
    if (workers >= workers_max) {
      workers_max = workers;
      workers_max_eps = eps;
    }
    if (!identical) {
      std::printf("SERIALIZED-STATE DIVERGENCE at %u workers\n", workers);
      return 1;
    }
  }
  wtable.Print();
  report.SetMetric("dist_deterministic", 1);

  // Same hardware-aware gate shape as the producer table, with a lower
  // ceiling: each worker pays fork + full-state serialization + the merge
  // tree, so even on big hosts the curve sits under the thread curve. On
  // <4-core hosts the floor degrades to not-collapsed.
  const double worker_floor = hc >= 8 ? 2.5 : hc >= 4 ? 1.5 : hc >= 2 ? 0.8
                                                                      : 0.3;
  const double worker_scaling =
      workers_1_eps > 0 ? workers_max_eps / workers_1_eps : 0.0;
  const bool worker_ok = worker_scaling >= worker_floor;
  std::printf(
      "\n%u-worker scaling vs 1-worker (process tree): %.2fx "
      "(floor %.1fx on %u hardware threads) -> %s\n",
      workers_max, worker_scaling, worker_floor, hc,
      worker_ok ? "ok" : "REGRESSION");
  report.SetMetric("worker_scaling", worker_scaling);
  report.SetMetric("worker_scaling_floor", worker_floor);
  report.SetMetric("worker_scaling_ok", worker_ok ? 1 : 0);
  if (!worker_ok) {
    std::printf("WORKER SCALING BELOW FLOOR\n");
    return 1;
  }

  // Socket transport overhead: the same tree at the max worker count with
  // frames shipped over loopback TCP instead of pipes. The result must
  // stay bit-identical (the transport is below the protocol, so the bytes
  // cannot change); the eps ratio prices the accept/dial/hello round trip
  // and is reported as a metric, not gated — loopback latency on hosted
  // runners is far too noisy for a floor.
  {
    DistOptions opts;
    opts.num_workers = workers_max;
    opts.batch_size = kBatchSize;
    opts.transport.kind = TransportKind::kTcp;
    ProcessReductionTree<CoverageSketchState> tree(
        opts, [&](uint32_t) { return CoverageSketchState(cfg); });
    CoverageSketchState merged = tree.Run(
        kDistSegments,
        [&](uint32_t s) { return MakeEdgeSpanSegment(edges, s, kDistSegments); });
    const DistMetrics& dm = tree.metrics();
    std::ostringstream os;
    merged.Save(os);
    if (os.str() != inline_blob) {
      std::printf("SERIALIZED-STATE DIVERGENCE over tcp transport\n");
      return 1;
    }
    const double tcp_eps = dm.EdgesPerSecond();
    std::printf(
        "\ntcp transport at %u workers: %.2fM edges/s (%.2fx of pipe), "
        "%llu connections, %llu poll wakeups, bit-identical\n",
        workers_max, tcp_eps / 1e6,
        workers_max_eps > 0 ? tcp_eps / workers_max_eps : 0.0,
        (unsigned long long)dm.connections_accepted,
        (unsigned long long)dm.poll_wakeups);
    report.SetMetric("tcp_transport_eps", tcp_eps);
    report.SetMetric("tcp_transport_vs_pipe",
                     workers_max_eps > 0 ? tcp_eps / workers_max_eps : 0.0);
    report.SetMetric("tcp_transport_deterministic", 1);
  }

  bench::DumpMetricsJson(metrics_out);
  report.Write(bench_out);
  return 0;
}

}  // namespace
}  // namespace streamkc

int main(int argc, char** argv) { return streamkc::Main(argc, argv); }
