// Experiments E1 + E2 (DESIGN.md): the headline space/approximation
// trade-off of Theorems 3.1 / 3.3 — estimating Max k-Cover to factor α in
// Θ̃(m/α²) space, for α across (Õ(1), Ω̃(√m)].
//
// Part A sweeps α at fixed m and reports (i) the achieved approximation
// ratio OPT/estimate (must stay ≤ Õ(α) and ≥ 1) and (ii) the measured sketch
// footprint against the m/α² reference curve: the ratio bytes/(m/α²) should
// flatten to a constant (× polylog) as α grows, while bytes/m and
// bytes/(m/α) keep drifting — the α-exponent of the law is 2.
//
// Part B sweeps m at fixed α: footprint should grow ~linearly in m.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/estimate_max_cover.h"
#include "obs/space_accountant.h"
#include "offline/greedy.h"
#include "setsys/generators.h"
#include "util/stopwatch.h"

namespace streamkc {
namespace {

struct RunResult {
  double estimate = 0;
  size_t bytes = 0;
  size_t hh_bytes = 0;  // heavy-hitter component (carries the m/alpha^2 term)
  double seconds = 0;
  std::string source;
};

RunResult RunEstimator(const SetSystem& sys, uint64_t k, double alpha,
                       uint64_t seed) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.seed = seed;
  EstimateMaxCover est(c);
  VectorEdgeStream stream = sys.MakeStream(ArrivalOrder::kRandom, seed);
  Stopwatch sw;
  FeedStream(stream, est);
  // Publish the run's per-component space breakdown into the global
  // registry so --metrics-out captures the last configuration's footprint.
  SpaceAccountant acct(&MetricsRegistry::Global());
  acct.Sample(est);
  EstimateOutcome out = est.Finalize();
  return {out.estimate, est.MemoryBytes(),
          est.trivial_mode() ? 0 : est.HeavyHitterComponentBytes(),
          sw.ElapsedSeconds(), out.source};
}

void PartA_AlphaSweep() {
  bench::Banner(
      "E1/E2 part A: approximation vs space across alpha (fixed m)",
      "space Theta~(m/alpha^2); estimate within factor alpha of OPT "
      "(Table 1 row 'Estimation / Edge Arrival / alpha')");
  const uint64_t m = bench::SmallScale() ? 1024 : 4096;
  const uint64_t n = 2 * m;
  const uint64_t k = 32;
  auto inst = PlantedCover(m, n, k, 0.5, 6, /*seed=*/7);
  double opt = static_cast<double>(inst.planted_coverage);

  bench::Table table({"alpha", "estimate", "OPT", "ratio(OPT/est)", "ok(<=alpha)",
                      "total_KB", "HH_KB", "HH/(m/a^2)", "sec"});
  for (double alpha : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    if (alpha > std::sqrt(static_cast<double>(m)) + 1) break;
    RunResult r = RunEstimator(inst.system, k, alpha, 1000 + alpha);
    double ratio = r.estimate > 0 ? opt / r.estimate : -1;
    double ma2 = static_cast<double>(m) / (alpha * alpha);
    table.AddRow({bench::Fmt("%.0f", alpha), bench::Fmt("%.0f", r.estimate),
                  bench::Fmt("%.0f", opt), bench::Fmt("%.2f", ratio),
                  ratio <= alpha * 2.0 && ratio >= 0.8 ? "yes" : "NO",
                  bench::Fmt("%zu", r.bytes >> 10),
                  bench::Fmt("%zu", r.hh_bytes >> 10),
                  bench::Fmt("%.0f", static_cast<double>(r.hh_bytes) / ma2),
                  bench::Fmt("%.2f", r.seconds)});
  }
  table.Print();
  std::printf(
      "Reading: ratio stays within ~alpha (the guarantee). HH_KB (the\n"
      "heavy-hitter component) falls steeply with alpha — its width-Θ(m/a²)\n"
      "CountSketches shrink quadratically until the alpha-independent\n"
      "polylog floor (φ2 sketches + superset pool) takes over; the total\n"
      "additionally carries O~(k) state. At laptop-scale m the polylog\n"
      "floor is visible; bench_lower_bound part C isolates the pure m/a²\n"
      "sketch and shows bytes·a²/m ≈ const, the textbook-clean law.\n");
}

void PartB_MSweep() {
  bench::Banner("E1 part B: space vs m (fixed alpha = 8)",
                "space grows ~linearly in m at fixed alpha");
  const double alpha = 8;
  const uint64_t k = 32;
  bench::Table table({"m", "sketch_KB", "bytes/m", "ratio(est)", "sec"});
  uint64_t max_m = bench::SmallScale() ? 4096 : 16384;
  for (uint64_t m = 1024; m <= max_m; m *= 2) {
    auto inst = PlantedCover(m, 2 * m, k, 0.5, 6, /*seed=*/9);
    RunResult r = RunEstimator(inst.system, k, alpha, 2000 + m);
    double opt = static_cast<double>(inst.planted_coverage);
    table.AddRow({bench::Fmt("%llu", static_cast<unsigned long long>(m)),
                  bench::Fmt("%zu", r.bytes >> 10),
                  bench::Fmt("%.1f", static_cast<double>(r.bytes) /
                                         static_cast<double>(m)),
                  bench::Fmt("%.2f", r.estimate > 0 ? opt / r.estimate : -1),
                  bench::Fmt("%.2f", r.seconds)});
  }
  table.Print();
  std::printf(
      "Reading: bytes/m roughly stabilizes as m grows — the footprint is\n"
      "linear in m at fixed alpha, as Theta~(m/alpha^2) predicts.\n");
}

}  // namespace
}  // namespace streamkc

int main(int argc, char** argv) {
  // Resolve (and writability-probe) the metrics sink before the sweeps: an
  // unwritable path must fail before the experiment runs, not after.
  const std::string metrics_out = streamkc::bench::MetricsOutPath(argc, argv);
  streamkc::PartA_AlphaSweep();
  streamkc::PartB_MSweep();
  streamkc::bench::DumpMetricsJson(metrics_out);
  return 0;
}
