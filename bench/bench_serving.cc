// Serving-subsystem throughput: concurrent snapshot publication + queries.
//
// Workload: a ServingRuntime ingesting a synthesized edge stream at a fixed
// snapshot cadence, three ways: (A) inline ingest with zero readers — the
// no-query baseline; (B) the same ingest with N reader threads hammering
// Estimate/SetCoverage/Report against the live SnapshotStore — the
// acceptance criterion is that ingest throughput stays within 10% of (A),
// since readers only touch immutable published snapshots; (C) sharded
// ingest, whose final snapshot must equal (A)'s exactly. The deterministic
// flag also covers the staleness differential: a sampled set of published
// epochs from (A) is re-derived by fresh inline prefix passes and must
// match answer-for-answer.
//
// NOTE on reading the with-query column: readers are real OS threads, so on
// hardware with fewer free cores than readers the query load time-slices
// the ingest core and the ratio dips below what a serving deployment (one
// core per reader) would see. The determinism columns are meaningful
// everywhere; record ratio curves from multi-core hardware in
// EXPERIMENTS.md.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/params.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/serving_runtime.h"
#include "serve/serving_state.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "stream/edge_stream.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace streamkc {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kM = 4096;
constexpr uint64_t kN = 1u << 20;
constexpr uint64_t kK = 16;
constexpr uint64_t kCadence = 1u << 16;
constexpr unsigned kReaders = 4;

ServingState::Config BenchConfig() {
  ServingState::Config config;
  config.params = Params::Practical(kM, kN, kK, 8.0);
  config.seed = 17;
  return config;
}

std::vector<Edge> SynthesizeEdges(size_t count, uint64_t seed) {
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = SplitMix64(seed + i);
    edges.push_back(Edge{h % kM, SplitMix64(h) % kN});
  }
  return edges;
}

// Served-answer equivalence between two snapshots: the full query surface
// (estimate, selected sets, per-set coverage probes) — what a client could
// actually observe differing.
bool AnswersMatch(const CoverageSnapshot& a, const CoverageSnapshot& b) {
  if (a.solution().estimate != b.solution().estimate) return false;
  if (a.solution().source != b.solution().source) return false;
  if (a.solution().sets != b.solution().sets) return false;
  for (SetId s = 0; s < 64; ++s) {
    if (a.SetCoverage(s) != b.SetCoverage(s)) return false;
  }
  return true;
}

// One timed ingest pass over `edges`. With readers > 0, that many threads
// run the full query mix against `store` for the duration of the ingest;
// `served_out`/`rejected_out` aggregate their counts.
IngestSummary TimedIngest(const std::vector<Edge>& edges,
                          const ServingRuntimeOptions& opts,
                          SnapshotStore* store, unsigned readers,
                          double* seconds_out, uint64_t* served_out,
                          uint64_t* rejected_out) {
  ServingRuntime runtime(BenchConfig(), opts, store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (unsigned r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      QueryEngine engine(store, opts.registry);
      uint64_t local_served = 0, local_rejected = 0, i = r;
      while (!stop.load(std::memory_order_acquire)) {
        EstimateAnswer est = engine.Estimate();
        est.ok ? ++local_served : ++local_rejected;
        SetCoverageAnswer cov = engine.SetCoverage(i++ % kM);
        cov.ok ? ++local_served : ++local_rejected;
        if (i % 16 == 0) {
          ReportAnswer rep = engine.Report();
          rep.ok ? ++local_served : ++local_rejected;
        }
      }
      served.fetch_add(local_served);
      rejected.fetch_add(local_rejected);
    });
  }
  Stopwatch sw;
  VectorEdgeStream stream(edges);
  IngestSummary sum = runtime.Ingest(stream);
  *seconds_out = sw.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  *served_out = served.load();
  *rejected_out = rejected.load();
  return sum;
}

int Main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutPath(argc, argv);
  const std::string bench_out = bench::BenchOutPath(argc, argv);
  const size_t num_edges = bench::SmallScale() ? 500'000 : 2'000'000;
  bench::BenchReport report("serving", bench::SmallScale() ? "small" : "full");
  report.SetConfig("num_edges", static_cast<double>(num_edges));
  report.SetConfig("cadence", static_cast<double>(kCadence));
  report.SetConfig("readers", kReaders);
  report.SetConfig("m", static_cast<double>(kM));
  report.SetConfig("k", static_cast<double>(kK));
  bench::Banner(
      "Coverage-as-a-service: snapshot publication under concurrent queries",
      "queries read immutable double-buffered snapshots, so serving them "
      "concurrently leaves ingest throughput within 10% of the no-query "
      "baseline and every answer equals an inline pass over its epoch");
  std::printf("edges: %zu, cadence: %llu, readers: %u, hardware threads: %u\n\n",
              num_edges, (unsigned long long)kCadence, kReaders,
              std::thread::hardware_concurrency());

  std::vector<Edge> edges = SynthesizeEdges(num_edges, 17);
  MetricsRegistry* reg = &MetricsRegistry::Global();

  // (A) no-query baseline, collecting every published snapshot for the
  // staleness differential below.
  std::vector<std::shared_ptr<const CoverageSnapshot>> published;
  SnapshotStore store_a("noquery", reg);
  ServingRuntimeOptions opts_a;
  opts_a.snapshot_every_edges = kCadence;
  opts_a.registry = reg;
  opts_a.on_publish = [&](const std::shared_ptr<const CoverageSnapshot>& s) {
    published.push_back(s);
  };
  double base_s = 0;
  uint64_t served = 0, rejected = 0;
  IngestSummary sum_a =
      TimedIngest(edges, opts_a, &store_a, 0, &base_s, &served, &rejected);
  double base_eps = static_cast<double>(sum_a.edges) / base_s;

  // Staleness differential (the subsystem's acceptance criterion): a
  // sampled set of published epochs must equal fresh inline prefix passes.
  // First, middle and final epoch bound the re-derivation cost while still
  // covering warmup, steady state and the trailing partial segment.
  bool differential_ok = true;
  const uint64_t last = published.empty() ? 0 : published.back()->meta().epoch;
  for (uint64_t epoch : {uint64_t{1}, (last + 1) / 2, last}) {
    if (epoch == 0 || epoch > last) continue;
    const CoverageSnapshot& snap = *published[epoch - 1];
    uint64_t prefix = std::min<uint64_t>(epoch * kCadence, edges.size());
    ServingState ref(BenchConfig());
    for (uint64_t i = 0; i < prefix; ++i) ref.Process(edges[i]);
    SnapshotMeta meta = snap.meta();
    auto want = CoverageSnapshot::Build(ref, meta);
    if (snap.meta().edges_ingested != prefix || !AnswersMatch(snap, *want)) {
      std::printf("STALENESS DIFFERENTIAL VIOLATION at epoch %llu\n",
                  (unsigned long long)epoch);
      differential_ok = false;
    }
  }

  // (B) the same ingest under full concurrent query load.
  SnapshotStore store_b("withquery", reg);
  ServingRuntimeOptions opts_b;
  opts_b.snapshot_every_edges = kCadence;
  opts_b.registry = reg;
  double query_s = 0;
  IngestSummary sum_b = TimedIngest(edges, opts_b, &store_b, kReaders,
                                    &query_s, &served, &rejected);
  double query_eps = static_cast<double>(sum_b.edges) / query_s;
  double qps = static_cast<double>(served) / query_s;

  // (C) sharded ingest must converge to the identical final answers.
  SnapshotStore store_c("sharded", reg);
  ServingRuntimeOptions opts_c;
  opts_c.snapshot_every_edges = kCadence;
  opts_c.threads = 4;
  opts_c.registry = reg;
  double shard_s = 0;
  uint64_t shard_served = 0, shard_rejected = 0;
  IngestSummary sum_c = TimedIngest(edges, opts_c, &store_c, 0, &shard_s,
                                    &shard_served, &shard_rejected);
  double shard_eps = static_cast<double>(sum_c.edges) / shard_s;
  bool sharded_ok = store_a.Current() != nullptr &&
                    store_c.Current() != nullptr &&
                    AnswersMatch(*store_a.Current(), *store_c.Current());
  if (!sharded_ok) std::printf("SHARDED/INLINE ANSWER DIVERGENCE\n");

  Table table({"mode", "edges/s", "snapshots", "queries/s", "served",
               "rejected"});
  table.AddRow({"inline, no queries", Fmt("%.2fM", base_eps / 1e6),
                Fmt("%llu", (unsigned long long)sum_a.snapshots_published),
                "-", "-", "-"});
  table.AddRow({Fmt("inline, %u readers", kReaders),
                Fmt("%.2fM", query_eps / 1e6),
                Fmt("%llu", (unsigned long long)sum_b.snapshots_published),
                Fmt("%.2fM", qps / 1e6), Fmt("%llu", (unsigned long long)served),
                Fmt("%llu", (unsigned long long)rejected)});
  table.AddRow({"sharded x4, no queries", Fmt("%.2fM", shard_eps / 1e6),
                Fmt("%llu", (unsigned long long)sum_c.snapshots_published),
                "-", "-", "-"});
  table.Print();

  double ratio = query_eps / base_eps;
  std::printf(
      "\ningest under query load: %.1f%% of no-query baseline (%s the "
      "within-10%% criterion%s)\n",
      ratio * 100.0, ratio >= 0.9 ? "meets" : "BELOW",
      ratio >= 0.9 ? "" : " — expected on oversubscribed cores, see header");
  std::printf("staleness differential: %s; sharded/inline answers: %s\n",
              differential_ok ? "exact" : "VIOLATED",
              sharded_ok ? "identical" : "DIVERGED");

  report.SetMetric("ingest_noquery_eps", base_eps);
  report.SetMetric("ingest_withquery_eps", query_eps);
  report.SetMetric("sharded_4_eps", shard_eps);
  report.SetMetric("query_qps", qps);
  report.SetMetric("ingest_query_ratio", ratio);
  report.SetMetric("snapshots_published",
                   static_cast<double>(sum_a.snapshots_published));
  if (!differential_ok || !sharded_ok) return 1;
  report.SetMetric("deterministic", 1);
  bench::DumpMetricsJson(metrics_out);
  report.Write(bench_out);
  return 0;
}

}  // namespace
}  // namespace streamkc

int main(int argc, char** argv) { return streamkc::Main(argc, argv); }
