// Experiments E4 / E5 / E6 (DESIGN.md): the Section-4 case analysis.
//
// The (α, δ, η)-oracle runs three subroutines; the paper's case analysis
// says each instance type is handled by (at least) its designated
// subroutine:
//   E4 — common-element instances  → LargeCommon (§4.1, multi-layered set
//        sampling) must be feasible;
//   E5 — large-set instances       → LargeSet (§4.2, heavy hitters /
//        contributing classes) must be feasible;
//   E6 — small-set instances       → SmallSet (§4.3, element sampling) must
//        be feasible.
// The table reports, per family × subroutine: feasibility rate over seeds,
// the mean estimate, and the oracle-level winner — showing both that the
// designated subroutine fires and that the max never overestimates.

#include <cstdio>

#include "bench_util.h"
#include "core/oracle.h"
#include "offline/greedy.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

struct CaseSpec {
  const char* experiment;
  const char* family;
  const char* designated;
  GeneratedInstance (*make)(uint64_t seed);
  uint64_t k;
};

GeneratedInstance MakeCommon(uint64_t seed) {
  return CommonElementFamily(1024, 2048, 8, 4.0, 1024, seed);
}
GeneratedInstance MakeLarge(uint64_t seed) {
  return LargeSetFamily(1024, 2048, 4, seed);
}
GeneratedInstance MakeSmall(uint64_t seed) {
  return SmallSetFamily(1024, 4096, 64, seed);
}

void RunCases() {
  const double alpha = 8;
  const int seeds = bench::SmallScale() ? 3 : 8;
  const CaseSpec cases[] = {
      {"E4", "common-element (case I)", "large-common", MakeCommon, 8},
      {"E5", "large-set (case II)", "large-set", MakeLarge, 8},
      {"E6", "small-set (case III)", "small-set", MakeSmall, 64},
  };
  bench::Banner("E4/E5/E6: oracle case analysis (Section 4)",
                "each structural case is served by its designated subroutine;"
                " estimates never exceed OPT");
  bench::Table table({"exp", "family", "subroutine", "feasible", "mean est",
                      "OPT(greedy)", "winner?"});
  for (const CaseSpec& cs : cases) {
    auto inst = cs.make(77);
    double opt = static_cast<double>(LazyGreedyMaxCover(inst.system, cs.k).coverage);
    struct Acc {
      int feasible = 0;
      double sum = 0;
      int winner = 0;
    } acc[3];
    const char* names[3] = {"large-common", "large-set", "small-set"};
    for (int t = 0; t < seeds; ++t) {
      Oracle::Config oc;
      oc.params = Params::Practical(inst.system.num_sets(),
                                    inst.system.num_elements(), cs.k, alpha);
      oc.universe_size = inst.system.num_elements();
      oc.seed = 3000 + t;
      Oracle oracle(oc);
      VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, t);
      FeedStream(stream, oracle);
      EstimateOutcome sub[3] = {oracle.large_common().Finalize(),
                                oracle.large_set().Finalize(),
                                oracle.has_small_set()
                                    ? oracle.small_set().Finalize()
                                    : EstimateOutcome{}};
      EstimateOutcome winner = oracle.Finalize();
      for (int i = 0; i < 3; ++i) {
        if (sub[i].feasible) {
          ++acc[i].feasible;
          acc[i].sum += sub[i].estimate;
        }
        if (winner.feasible && winner.source == names[i]) ++acc[i].winner;
      }
    }
    for (int i = 0; i < 3; ++i) {
      table.AddRow(
          {cs.experiment, cs.family, names[i],
           bench::Fmt("%d/%d", acc[i].feasible, seeds),
           acc[i].feasible ? bench::Fmt("%.0f", acc[i].sum / acc[i].feasible)
                           : "-",
           bench::Fmt("%.0f", opt), bench::Fmt("%d/%d", acc[i].winner, seeds)});
    }
  }
  table.Print();
  std::printf(
      "Reading: the designated subroutine is feasible on (nearly) every\n"
      "seed of its family. Other subroutines may also fire — the oracle\n"
      "takes the max — but none exceeds OPT(greedy)/0.63.\n");
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::RunCases();
  return 0;
}
