// Experiment E10 (DESIGN.md): Table 1's qualitative landscape — the known
// algorithms' quality and space on the same instances, side by side.
//
// Rows reproduced:
//   * offline greedy            — 1/(1-1/e) factor, full memory;
//   * set-arrival sieve (2+ε)   — single pass, but REQUIRES set-contiguous
//                                 arrival [9, 34, 37];
//   * edge-arrival sketch (α)   — this paper: any order, Õ(m/α² + k) space.
//
// The table shows: on set-contiguous streams the sieve wins on quality; on
// the general order it cannot run at all (its defining limitation — the
// paper's motivation), while the sketch pipeline's quality is unchanged.

#include <cstdio>

#include "bench_util.h"
#include "core/report_max_cover.h"
#include "offline/baselines.h"
#include "offline/greedy.h"
#include "offline/set_arrival_streaming.h"
#include "offline/sketch_greedy.h"
#include "setsys/generators.h"
#include "util/stopwatch.h"

namespace streamkc {
namespace {

void CompareBaselines() {
  bench::Banner(
      "E10: Table 1 landscape — greedy vs set-arrival sieve vs this paper",
      "set-arrival algorithms need contiguous sets; the sketch works in any "
      "order at O~(m/alpha^2 + k) space");
  const uint64_t m = bench::SmallScale() ? 1024 : 2048;
  const uint64_t n = 2 * m;
  const uint64_t k = 32;
  const double alpha = 8;
  auto inst = PlantedCover(m, n, k, 0.5, 6, 13);

  bench::Table table({"algorithm", "arrival order", "coverage", "vs greedy",
                      "memory_KB", "sec"});

  Stopwatch sw;
  CoverSolution greedy = LazyGreedyMaxCover(inst.system, k);
  double greedy_sec = sw.ElapsedSeconds();
  size_t full_bytes = inst.system.TotalEdges() * sizeof(Edge);
  table.AddRow({"offline greedy (1/(1-1/e))", "any (stored)",
                bench::Fmt("%llu", (unsigned long long)greedy.coverage), "1.00",
                bench::Fmt("%zu", full_bytes >> 10),
                bench::Fmt("%.2f", greedy_sec)});

  {
    VectorEdgeStream stream =
        inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
    SetArrivalSieve::Config sc;
    sc.k = k;
    sc.opt_upper_bound = n;
    size_t bytes = 0;
    sw.Restart();
    CoverSolution sieve = RunSetArrivalSieve(stream, sc, &bytes);
    table.AddRow({"set-arrival sieve (2+eps)", "set-contiguous ONLY",
                  bench::Fmt("%llu", (unsigned long long)sieve.coverage),
                  bench::Fmt("%.2f", static_cast<double>(greedy.coverage) /
                                         sieve.coverage),
                  bench::Fmt("%zu", bytes >> 10),
                  bench::Fmt("%.2f", sw.ElapsedSeconds())});
  }

  {
    // Table 1 row "Reporting / Edge Arrival / 1/(1-1/e-eps)" [12, 34]:
    // constant factor, any order, but Theta~(m) space.
    SketchGreedy sg({.k = k, .num_mins = 64, .seed = 17});
    VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 4);
    sw.Restart();
    FeedStream(stream, sg);
    CoverSolution sol = sg.Finalize();
    uint64_t cov = inst.system.CoverageOf(sol.sets);
    table.AddRow({"edge-arrival sketch-greedy (1/(1-1/e-eps))", "any",
                  bench::Fmt("%llu", (unsigned long long)cov),
                  bench::Fmt("%.2f", static_cast<double>(greedy.coverage) /
                                         std::max<uint64_t>(cov, 1)),
                  bench::Fmt("%zu", sg.MemoryBytes() >> 10),
                  bench::Fmt("%.2f", sw.ElapsedSeconds())});
  }

  for (ArrivalOrder order :
       {ArrivalOrder::kSetContiguous, ArrivalOrder::kRandom,
        ArrivalOrder::kRoundRobin}) {
    ReportMaxCover::Config rc;
    rc.params = Params::Practical(m, n, k, alpha);
    rc.seed = 31;
    ReportMaxCover rep(rc);
    VectorEdgeStream stream = inst.system.MakeStream(order, 2);
    sw.Restart();
    FeedStream(stream, rep);
    MaxCoverSolution sol = rep.Finalize();
    double sec = sw.ElapsedSeconds();
    uint64_t cov = inst.system.CoverageOf(sol.sets);
    table.AddRow({bench::Fmt("edge-arrival sketch (alpha=%.0f)", alpha),
                  ArrivalOrderName(order),
                  bench::Fmt("%llu", (unsigned long long)cov),
                  bench::Fmt("%.2f", static_cast<double>(greedy.coverage) /
                                         std::max<uint64_t>(cov, 1)),
                  bench::Fmt("%zu", rep.MemoryBytes() >> 10),
                  bench::Fmt("%.2f", sec)});
  }

  CoverSolution random = RandomKBaseline(inst.system, k, 5);
  table.AddRow({"random-k baseline", "-",
                bench::Fmt("%llu", (unsigned long long)random.coverage),
                bench::Fmt("%.2f", static_cast<double>(greedy.coverage) /
                                       std::max<uint64_t>(random.coverage, 1)),
                "-", "-"});
  CoverSolution topk = TopKBySizeBaseline(inst.system, k);
  table.AddRow({"top-k-by-size baseline", "-",
                bench::Fmt("%llu", (unsigned long long)topk.coverage),
                bench::Fmt("%.2f", static_cast<double>(greedy.coverage) /
                                       std::max<uint64_t>(topk.coverage, 1)),
                "-", "-"});

  table.Print();
  std::printf(
      "Reading: the sieve is sharper (factor ~2) but only exists on\n"
      "set-contiguous input. Among order-robust algorithms the trade is\n"
      "space: sketch-greedy [12,34] pays Theta~(m) for a ~1.6 factor, this\n"
      "paper's pipeline pays O~(m/alpha^2 + k) for factor alpha — the two\n"
      "endpoints of the tight trade-off curve. (The sieve on a general-order\n"
      "stream aborts by contract — see offline_set_arrival_test.cc.)\n");
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::CompareBaselines();
  return 0;
}
