// Experiment E11 (DESIGN.md): the reporting algorithm (Theorem 3.2) —
// an α-approximate k-cover, not just its value, in Õ(m/α² + k) space.
//
// For each instance family and α, the bench reports the returned solution's
// TRUE coverage (evaluated offline against the ground-truth set system), the
// achieved factor vs greedy, the number of sets returned (≤ k), which
// subroutine produced the witness, and the space used.

#include <cstdio>

#include "bench_util.h"
#include "core/report_max_cover.h"
#include "offline/greedy.h"
#include "setsys/generators.h"
#include "util/stopwatch.h"

namespace streamkc {
namespace {

void ReportingQuality() {
  bench::Banner("E11: solution reporting (Theorem 3.2)",
                "alpha-approximate k-cover in O~(m/alpha^2 + k) space");
  struct Workload {
    const char* name;
    GeneratedInstance inst;
    uint64_t k;
  };
  const uint64_t scale = bench::SmallScale() ? 1024 : 2048;
  Workload workloads[] = {
      {"planted", PlantedCover(scale, 2 * scale, 32, 0.5, 6, 5), 32},
      {"large-set", LargeSetFamily(scale, scale, 4, 6), 8},
      {"small-set", SmallSetFamily(scale, 2 * scale, 64, 7), 64},
      {"graph", GraphNeighborhoods(scale, 24.0, 8), 48},
  };
  bench::Table table({"family", "alpha", "k", "|sets|", "true cov",
                      "greedy", "factor", "ok(<=1.5a)", "source", "mem_KB",
                      "sec"});
  for (auto& w : workloads) {
    uint64_t greedy = LazyGreedyMaxCover(w.inst.system, w.k).coverage;
    for (double alpha : {4.0, 8.0, 16.0}) {
      ReportMaxCover::Config rc;
      rc.params = Params::Practical(w.inst.system.num_sets(),
                                    w.inst.system.num_elements(), w.k, alpha);
      rc.seed = 4000 + static_cast<uint64_t>(alpha);
      ReportMaxCover rep(rc);
      VectorEdgeStream stream = w.inst.system.MakeStream(ArrivalOrder::kRandom, 3);
      Stopwatch sw;
      FeedStream(stream, rep);
      MaxCoverSolution sol = rep.Finalize();
      double sec = sw.ElapsedSeconds();
      uint64_t cov = w.inst.system.CoverageOf(sol.sets);
      double factor = cov > 0 ? static_cast<double>(greedy) / cov : -1;
      table.AddRow({w.name, bench::Fmt("%.0f", alpha),
                    bench::Fmt("%llu", (unsigned long long)w.k),
                    bench::Fmt("%zu", sol.sets.size()),
                    bench::Fmt("%llu", (unsigned long long)cov),
                    bench::Fmt("%llu", (unsigned long long)greedy),
                    bench::Fmt("%.2f", factor),
                    (factor > 0 && factor <= 1.5 * alpha) ? "yes" : "NO",
                    sol.source.c_str(),
                    bench::Fmt("%zu", rep.MemoryBytes() >> 10),
                    bench::Fmt("%.2f", sec)});
    }
  }
  table.Print();
  std::printf(
      "Reading: every row returns <= k real set ids whose true coverage is\n"
      "within ~alpha of greedy, in every structural family; tighter alpha\n"
      "costs more space (see bench_tradeoff) but buys a better factor.\n");
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::ReportingQuality();
  return 0;
}
