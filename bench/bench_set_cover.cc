// Experiment E13 (extension): the dual problem's pass/approximation trade —
// multi-pass streaming Set Cover ([21], the same authors' earlier work the
// paper builds its related-work narrative on).
//
// The table traces solution size vs number of passes at Õ(n) memory against
// the offline greedy (ln n) and exact optima: one pass is crude, a handful
// of passes approaches greedy — the trade-off that motivated studying
// space/approximation frontiers for coverage problems in streams, of which
// this paper's Θ̃(m/α²) Max k-Cover bound is the single-pass culmination.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "offline/multi_pass_set_cover.h"
#include "offline/set_cover.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

void PassTradeoff() {
  bench::Banner("E13: multi-pass streaming Set Cover (the dual problem, [21])",
                "p passes at O~(n) memory buy an O(p·n^(1/p))-approximate "
                "cover; many passes approach greedy's ln n factor");
  const uint64_t m = bench::SmallScale() ? 256 : 512;
  const uint64_t n = bench::SmallScale() ? 512 : 1024;
  auto inst = ZipfFrequency(m, n, 18, 0.8, 5);
  SetCoverSolution greedy = GreedySetCover(inst.system);

  bench::Table table({"passes (budget)", "passes used", "cover size",
                      "vs greedy", "memory_KB"});
  VectorEdgeStream stream =
      inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  for (uint32_t p : {1u, 2u, 3u, 5u, 8u, 12u}) {
    stream.Reset();
    MultiPassSetCoverResult r = RunMultiPassSetCover(stream, n, p);
    table.AddRow({bench::Fmt("%u", p), bench::Fmt("%u", r.passes_used),
                  bench::Fmt("%zu", r.solution.sets.size()),
                  bench::Fmt("%.2f", static_cast<double>(r.solution.sets.size()) /
                                         static_cast<double>(greedy.sets.size())),
                  bench::Fmt("%zu", r.memory_bytes >> 10)});
  }
  table.AddRow({"offline greedy (ln n)", "-",
                bench::Fmt("%zu", greedy.sets.size()), "1.00", "-"});
  table.Print();
  std::printf(
      "Reading: each extra pass buys a smaller cover at the same O~(n)\n"
      "memory; the curve flattens onto greedy. Contrast with Max k-Cover\n"
      "(this paper): a SINGLE pass suffices there because an approximate\n"
      "VALUE is acceptable — the set-cover feasibility requirement is what\n"
      "makes passes (or mn-scale space, footnote 5) unavoidable.\n");
}

void SmallInstanceExactness() {
  bench::Banner("E13 (cont.): greedy vs exact on small instances",
                "greedy's ln(n)+1 bound in practice");
  bench::Table table({"seed", "exact OPT", "greedy", "ratio", "ln(n)+1"});
  double log_bound = std::log(40.0) + 1.0;
  for (int seed = 1; seed <= 6; ++seed) {
    auto inst = RandomUniform(14, 40, 8, seed);
    SetCoverSolution greedy = GreedySetCover(inst.system);
    SetCoverSolution exact = ExactSetCover(inst.system);
    table.AddRow({bench::Fmt("%d", seed), bench::Fmt("%zu", exact.sets.size()),
                  bench::Fmt("%zu", greedy.sets.size()),
                  bench::Fmt("%.2f", static_cast<double>(greedy.sets.size()) /
                                         static_cast<double>(exact.sets.size())),
                  bench::Fmt("%.2f", log_bound)});
  }
  table.Print();
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::PassTradeoff();
  streamkc::SmallInstanceExactness();
  return 0;
}
