// Experiments E8 + E9 (DESIGN.md): the sketching substrates' contracts.
//
// E8 — F2 heavy hitters (Theorem 2.10): recall of truly φ-heavy coordinates
//      and (1 ± 1/2) frequency accuracy on Zipf streams, plus
//      F2-Contributing's class-hit rate (Theorem 2.11).
// E9 — L0 estimation (Theorem 2.12): relative error vs sketch size, and the
//      1/√k error law of the KMV sketch.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/hyperloglog.h"
#include "sketch/l0_estimator.h"

namespace streamkc {
namespace {

void HeavyHitterContract() {
  bench::Banner("E8: F2 heavy hitters (Theorem 2.10)",
                "return ALL j with a[j]^2 >= phi*F2, values within (1±1/2), "
                "space O~(1/phi)");
  const int num_items = 2000;
  const int seeds = bench::SmallScale() ? 5 : 15;
  bench::Table table({"phi", "zipf_s", "truly heavy", "recall",
                      "val in (1±1/2)", "sketch_KB"});
  for (double phi : {0.05, 0.01, 0.002}) {
    for (double zipf : {1.0, 1.5}) {
      int heavy_total = 0, found_total = 0, val_ok = 0, val_total = 0;
      size_t bytes = 0;
      for (int s = 0; s < seeds; ++s) {
        std::vector<int64_t> freq(num_items);
        double f2 = 0;
        for (int i = 0; i < num_items; ++i) {
          freq[i] = 1 + static_cast<int64_t>(
                            3000.0 / std::pow(i + 1.0, zipf));
          f2 += static_cast<double>(freq[i]) * freq[i];
        }
        F2HeavyHitters hh({.phi = phi, .seed = 100u + s});
        for (int i = 0; i < num_items; ++i) hh.Add(i, freq[i]);
        bytes = hh.MemoryBytes();
        auto out = hh.Extract();
        for (int i = 0; i < num_items; ++i) {
          if (static_cast<double>(freq[i]) * freq[i] < phi * f2) continue;
          ++heavy_total;
          auto it = std::find_if(out.begin(), out.end(),
                                 [i](const HeavyHitter& h) {
                                   return h.id == static_cast<uint64_t>(i);
                                 });
          if (it == out.end()) continue;
          ++found_total;
          ++val_total;
          double rel = it->estimate / static_cast<double>(freq[i]);
          if (rel >= 0.5 && rel <= 1.5) ++val_ok;
        }
      }
      table.AddRow(
          {bench::Fmt("%.3f", phi), bench::Fmt("%.1f", zipf),
           bench::Fmt("%d", heavy_total),
           heavy_total ? bench::Fmt("%.3f",
                                    found_total / (double)heavy_total)
                       : "-",
           val_total ? bench::Fmt("%.3f", val_ok / (double)val_total) : "-",
           bench::Fmt("%zu", bytes >> 10)});
    }
  }
  table.Print();
}

void ContributingContract() {
  bench::Banner("E8 (cont.): F2-Contributing (Theorem 2.11)",
                "one representative from every gamma-contributing class");
  const int seeds = bench::SmallScale() ? 5 : 15;
  // Planted class: `size` coordinates of weight w over unit noise.
  bench::Table table({"class size", "coord weight", "class share of F2",
                      "hit rate", "sketch_KB"});
  struct Plant {
    uint64_t size;
    int64_t weight;
  };
  for (Plant plant : {Plant{1, 200}, Plant{64, 24}, Plant{1024, 8}}) {
    int hits = 0;
    size_t bytes = 0;
    double share = 0;
    for (int s = 0; s < seeds; ++s) {
      F2Contributing fc({.gamma = 0.2,
                         .max_class_size = 4096,
                         .domain_size = 16384,
                         .seed = 500u + s});
      double class_f2 = static_cast<double>(plant.size) * plant.weight *
                        plant.weight;
      double noise_f2 = 4096;
      share = class_f2 / (class_f2 + noise_f2);
      for (uint64_t j = 0; j < plant.size; ++j) {
        fc.Add(100000 + j, plant.weight);
      }
      for (uint64_t i = 0; i < 4096; ++i) fc.Add(i);
      bytes = fc.MemoryBytes();
      auto out = fc.Extract();
      hits += std::any_of(out.begin(), out.end(),
                          [&](const ContributingCoordinate& cc) {
                            return cc.id >= 100000 &&
                                   cc.id < 100000 + plant.size;
                          });
    }
    table.AddRow({bench::Fmt("%llu", (unsigned long long)plant.size),
                  bench::Fmt("%lld", (long long)plant.weight),
                  bench::Fmt("%.2f", share),
                  bench::Fmt("%.2f", hits / (double)seeds),
                  bench::Fmt("%zu", bytes >> 10)});
  }
  table.Print();
  std::printf(
      "Reading: classes of every size — including ones whose individual\n"
      "coordinates are far below the heavy-hitter bar — are caught via the\n"
      "per-level subsampling, as Theorem 2.11 promises.\n");
}

void L0Contract() {
  bench::Banner("E9: L0 estimation (Theorem 2.12)",
                "(1±eps) distinct count in O~(1) space; KMV error ~ 2/sqrt(k)");
  const int seeds = bench::SmallScale() ? 10 : 40;
  const uint64_t n = 100000;
  bench::Table table({"num_mins", "bytes", "mean rel err", "max rel err",
                      "2/sqrt(k) ref"});
  for (uint32_t k : {16u, 64u, 256u, 1024u}) {
    double sum_err = 0, max_err = 0;
    size_t bytes = 0;
    for (int s = 0; s < seeds; ++s) {
      L0Estimator l0({.num_mins = k, .seed = 1000u + s});
      for (uint64_t i = 0; i < n; ++i) l0.Add(i * 2654435761u + s);
      double err = std::abs(l0.Estimate() - static_cast<double>(n)) / n;
      sum_err += err;
      max_err = std::max(max_err, err);
      bytes = l0.MemoryBytes();
    }
    table.AddRow({bench::Fmt("%u", k), bench::Fmt("%zu", bytes),
                  bench::Fmt("%.4f", sum_err / seeds),
                  bench::Fmt("%.4f", max_err),
                  bench::Fmt("%.4f", 2.0 / std::sqrt((double)k))});
  }
  table.Print();
  std::printf(
      "Reading: error tracks the 2/sqrt(k) reference; num_mins = 64 (the\n"
      "library default) is far inside Theorem 2.12's (1±1/2) contract.\n");
}

void L0AlternativesComparison() {
  bench::Banner("E9 (cont.): KMV vs HyperLogLog (two Thm 2.12 realizations)",
                "equal-error space comparison; KMV is exact below k distinct,"
                " HLL is ~5x smaller per unit accuracy");
  const int seeds = bench::SmallScale() ? 10 : 30;
  const uint64_t n = 200000;
  bench::Table table({"sketch", "config", "bytes", "mean rel err",
                      "exact when small?"});
  for (uint32_t k : {64u, 256u}) {
    double err = 0;
    size_t bytes = 0;
    for (int s = 0; s < seeds; ++s) {
      L0Estimator l0({.num_mins = k, .seed = 2000u + s});
      for (uint64_t i = 0; i < n; ++i) l0.Add(i * 131 + s);
      err += std::abs(l0.Estimate() - (double)n) / n;
      bytes = l0.MemoryBytes();
    }
    table.AddRow({"KMV", bench::Fmt("num_mins=%u", k),
                  bench::Fmt("%zu", bytes), bench::Fmt("%.4f", err / seeds),
                  "yes"});
  }
  for (uint32_t p : {10u, 14u}) {
    double err = 0;
    size_t bytes = 0;
    for (int s = 0; s < seeds; ++s) {
      HyperLogLog hll({.precision = p, .seed = 2000u + s});
      for (uint64_t i = 0; i < n; ++i) hll.Add(i * 131 + s);
      err += std::abs(hll.Estimate() - (double)n) / n;
      bytes = (1u << p);  // register payload (hash tables are shared/const)
    }
    table.AddRow({"HyperLogLog", bench::Fmt("precision=%u", p),
                  bench::Fmt("%zu", bytes), bench::Fmt("%.4f", err / seeds),
                  "linear-counting"});
  }
  table.Print();
  std::printf(
      "Reading: at matched error HLL's registers are several times smaller;\n"
      "streamkc's algorithm paths keep KMV because exactness below k\n"
      "distinct values matters on the tiny reduced universes (z as small as\n"
      "8), where HLL's bias corrections are at their weakest.\n");
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::HeavyHitterContract();
  streamkc::ContributingContract();
  streamkc::L0Contract();
  streamkc::L0AlternativesComparison();
  return 0;
}
