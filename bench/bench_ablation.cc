// Ablation studies for the design choices DESIGN.md calls out.
//
//   A1 — universe reduction (Section 3.1): run the raw (α,δ,η)-oracle on the
//        original universe vs. the full EstimateMaxCover wrapper, on
//        instances whose optimum covers a SMALL fraction of U. The oracle's
//        preconditions (coverage ≥ |U|/η) fail without reduction; the
//        wrapper's guessed reductions restore them.
//   A2 — heavy-hitter noise floor: Extract()'s 3σ floor (an implementation
//        safeguard beyond Theorem 2.10's statement) vs. disabled. Without
//        it, F2-heavy streams with no heavy coordinate yield spurious
//        hitters and the LargeSet path reports phantom coverage.
//   A3 — universe-guess grid resolution and repetition count: estimate
//        quality vs. oracle count (the δ / granularity trade in Fig. 1).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/estimate_max_cover.h"
#include "core/oracle.h"
#include "offline/greedy.h"
#include "setsys/generators.h"
#include "sketch/f2_heavy_hitters.h"
#include "util/random.h"

namespace streamkc {
namespace {

void A1_UniverseReduction() {
  bench::Banner("A1: universe reduction on/off (Section 3.1)",
                "oracles need OPT >= |U|/eta; the reduction manufactures that "
                "precondition for any OPT");
  const uint64_t m = 2048, k = 32;
  const double alpha = 8;
  bench::Table table({"OPT fraction of U", "raw oracle", "raw src",
                      "with reduction", "wrapped src", "OPT"});
  // Same planted coverage, increasingly diluted universes.
  for (uint64_t n : {4096ull, 65536ull, 262144ull}) {
    auto inst = PlantedCover(m, n, k, 2048.0 / static_cast<double>(n), 6, 3);
    double opt = static_cast<double>(inst.planted_coverage);

    Oracle::Config oc;
    oc.params = Params::Practical(m, n, k, alpha);
    oc.universe_size = n;
    oc.seed = 77;
    Oracle raw(oc);
    VectorEdgeStream s1 = inst.system.MakeStream(ArrivalOrder::kRandom, 1);
    FeedStream(s1, raw);
    EstimateOutcome raw_out = raw.Finalize();

    EstimateMaxCover::Config ec;
    ec.params = oc.params;
    ec.seed = 78;
    EstimateMaxCover wrapped(ec);
    VectorEdgeStream s2 = inst.system.MakeStream(ArrivalOrder::kRandom, 1);
    FeedStream(s2, wrapped);
    EstimateOutcome wrapped_out = wrapped.Finalize();

    table.AddRow({bench::Fmt("%.4f", opt / static_cast<double>(n)),
                  raw_out.feasible ? bench::Fmt("%.0f", raw_out.estimate)
                                   : "infeasible",
                  raw_out.feasible ? raw_out.source : "-",
                  bench::Fmt("%.0f", wrapped_out.estimate),
                  wrapped_out.source, bench::Fmt("%.0f", opt)});
  }
  table.Print();
  std::printf(
      "Reading: the threshold-based subroutines (large-common / large-set)\n"
      "need OPT = Omega(|U|) and fall silent as the universe dilutes; the\n"
      "raw oracle then leans entirely on small-set's guess ladder, whose\n"
      "reach ends at gamma <= 2*alpha*eta. The reduction re-normalizes every\n"
      "guess z to a constant-fraction instance, keeping all three\n"
      "subroutines in play at ANY dilution — that is Section 3.1's point.\n");
}

void A2_NoiseFloor() {
  bench::Banner("A2: heavy-hitter extraction noise floor on/off",
                "without a noise floor, heavy-hitter-free streams yield "
                "spurious hitters");
  const int trials = bench::SmallScale() ? 10 : 30;
  bench::Table table({"floor (sigmas)", "spurious-hit rate", "recall of real HH"});
  for (double sigmas : {0.0, 3.0}) {
    int spurious = 0, recalled = 0;
    for (int t = 0; t < trials; ++t) {
      // Stream with NO φ-heavy coordinate: 4096 ids of weight 8.
      F2HeavyHitters::Config c;
      c.phi = 0.01;
      c.noise_floor_sigmas = sigmas;
      c.seed = 100u + t;
      F2HeavyHitters none(c);
      for (uint64_t i = 0; i < 4096; ++i) none.Add(i, 8);
      spurious += !none.Extract().empty();

      // Stream WITH a real heavy coordinate.
      F2HeavyHitters some(c);
      some.Add(999999, 600);
      for (uint64_t i = 0; i < 4096; ++i) some.Add(i, 8);
      auto out = some.Extract();
      recalled += std::any_of(out.begin(), out.end(), [](const HeavyHitter& h) {
        return h.id == 999999;
      });
    }
    table.AddRow({bench::Fmt("%.0f", sigmas),
                  bench::Fmt("%.2f", spurious / (double)trials),
                  bench::Fmt("%.2f", recalled / (double)trials)});
  }
  table.Print();
  std::printf(
      "Reading: the floor eliminates spurious hitters on heavy-free streams\n"
      "without hurting recall of genuine ones; LargeSet's soundness on\n"
      "graph-like instances depends on it (see DESIGN.md).\n");
}

void A3_GridResolution() {
  bench::Banner("A3: guess-grid resolution x repetitions (Fig. 1 knobs)",
                "more oracles buy estimate stability; the step-2 grid is the "
                "cost/quality sweet spot used by Params::Practical");
  auto inst = PlantedCover(2048, 4096, 32, 0.5, 6, 9);
  double opt = static_cast<double>(inst.planted_coverage);
  bench::Table table({"guess step", "reps", "oracles", "estimate", "ratio",
                      "mem_KB"});
  for (uint32_t step : {1u, 2u, 3u}) {
    for (uint32_t reps : {1u, 2u}) {
      Params p = Params::Practical(2048, 4096, 32, 8);
      p.universe_guess_log_step = step;
      p.universe_reduction_reps = reps;
      EstimateMaxCover::Config c;
      c.params = p;
      c.seed = 31 + step * 10 + reps;
      EstimateMaxCover est(c);
      VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 2);
      FeedStream(stream, est);
      EstimateOutcome out = est.Finalize();
      table.AddRow({bench::Fmt("%u", step), bench::Fmt("%u", reps),
                    bench::Fmt("%u", est.num_oracles()),
                    bench::Fmt("%.0f", out.estimate),
                    bench::Fmt("%.2f", out.estimate > 0 ? opt / out.estimate : -1),
                    bench::Fmt("%zu", est.MemoryBytes() >> 10)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace streamkc

int main() {
  streamkc::A1_UniverseReduction();
  streamkc::A2_NoiseFloor();
  streamkc::A3_GridResolution();
  return 0;
}
