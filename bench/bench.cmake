# Benchmark harness targets. Included from the top-level CMakeLists (not
# add_subdirectory) so ${CMAKE_BINARY_DIR}/bench holds only executables.

function(streamkc_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE
    streamkc_dist streamkc_serve streamkc_runtime streamkc_core
    streamkc_offline streamkc_sketch streamkc_setsys streamkc_stream
    streamkc_obs streamkc_hash streamkc_util)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

streamkc_bench(bench_tradeoff)
streamkc_bench(bench_lower_bound)
streamkc_bench(bench_oracle_cases)
streamkc_bench(bench_universe_reduction)
streamkc_bench(bench_sketches)
streamkc_bench(bench_baselines)
streamkc_bench(bench_reporting)
streamkc_bench(bench_ablation)
streamkc_bench(bench_set_cover)
streamkc_bench(bench_runtime)
streamkc_bench(bench_serving)

# --metrics-out contract: an unwritable sink must fail fast (the probe
# runs before the experiment), never silently drop the dump at the end.
add_test(NAME bench_metrics_out_unwritable_fails
  COMMAND bench_runtime --metrics-out
          ${CMAKE_BINARY_DIR}/no-such-dir/metrics.json)
set_tests_properties(bench_metrics_out_unwritable_fails PROPERTIES
  ENVIRONMENT "STREAMKC_BENCH_SCALE=small"
  WILL_FAIL TRUE LABELS "tier1" TIMEOUT 60)

# Perf smoke: a small-scale bench_runtime pass emits BENCH_runtime.json,
# then compare_bench.py diffs it against the checked-in baseline. Shape
# drift (schema/metric/config changes, determinism violations) hard-fails;
# throughput deltas only warn (shared runners are too noisy for a hard perf
# gate — run compare_bench.py --hard-perf by hand on quiet hardware).
add_test(NAME bench_runtime_perf_smoke
  COMMAND bench_runtime --bench-out ${CMAKE_BINARY_DIR}/BENCH_runtime.json)
set_tests_properties(bench_runtime_perf_smoke PROPERTIES
  ENVIRONMENT "STREAMKC_BENCH_SCALE=small"
  FIXTURES_SETUP bench_runtime_json LABELS "tier1" TIMEOUT 600)
find_package(Python3 COMPONENTS Interpreter)
if(Python3_Interpreter_FOUND)
  add_test(NAME bench_runtime_compare
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/compare_bench.py
            ${CMAKE_SOURCE_DIR}/bench/baselines/BENCH_runtime.small.json
            ${CMAKE_BINARY_DIR}/BENCH_runtime.json)
  set_tests_properties(bench_runtime_compare PROPERTIES
    FIXTURES_REQUIRED bench_runtime_json LABELS "tier1" TIMEOUT 60)
endif()

# Serving perf smoke mirrors the runtime one: the bench itself hard-fails on
# any correctness break (staleness differential, sharded/inline divergence);
# the comparator then hard-gates shape + the deterministic flag and warns on
# throughput drift.
add_test(NAME bench_serving_perf_smoke
  COMMAND bench_serving --bench-out ${CMAKE_BINARY_DIR}/BENCH_serving.json)
set_tests_properties(bench_serving_perf_smoke PROPERTIES
  ENVIRONMENT "STREAMKC_BENCH_SCALE=small"
  FIXTURES_SETUP bench_serving_json LABELS "tier1" TIMEOUT 600)
if(Python3_Interpreter_FOUND)
  add_test(NAME bench_serving_compare
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/compare_bench.py
            ${CMAKE_SOURCE_DIR}/bench/baselines/BENCH_serving.small.json
            ${CMAKE_BINARY_DIR}/BENCH_serving.json)
  set_tests_properties(bench_serving_compare PROPERTIES
    FIXTURES_REQUIRED bench_serving_json LABELS "tier1" TIMEOUT 60)
endif()

# Throughput micro-benchmarks use google-benchmark, fronted by the
# hash-kernel table (scalar vs avx2 MapFoldedBatch) which emits
# BENCH_micro.json before the google-benchmark suite runs.
add_executable(bench_micro ${CMAKE_SOURCE_DIR}/bench/bench_micro.cc)
target_link_libraries(bench_micro PRIVATE
  streamkc_core streamkc_offline streamkc_sketch streamkc_setsys
  streamkc_stream streamkc_obs streamkc_hash streamkc_util
  benchmark::benchmark)
set_target_properties(bench_micro PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Hash-kernel perf smoke: --benchmark_filter=^$ skips the google-benchmark
# entries so only the kernel table runs (seconds, not minutes). The binary
# itself hard-fails on a scalar/avx2 checksum mismatch or a speedup below
# its floor; the comparator then hard-gates shape + hash_kernel_ok and
# warns on per-kernel throughput drift.
add_test(NAME bench_micro_perf_smoke
  COMMAND bench_micro --bench-out ${CMAKE_BINARY_DIR}/BENCH_micro.json
          --benchmark_filter=^$)
set_tests_properties(bench_micro_perf_smoke PROPERTIES
  ENVIRONMENT "STREAMKC_BENCH_SCALE=small"
  FIXTURES_SETUP bench_micro_json LABELS "tier1" TIMEOUT 600)
if(Python3_Interpreter_FOUND)
  add_test(NAME bench_micro_compare
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/compare_bench.py
            ${CMAKE_SOURCE_DIR}/bench/baselines/BENCH_micro.small.json
            ${CMAKE_BINARY_DIR}/BENCH_micro.json)
  set_tests_properties(bench_micro_compare PROPERTIES
    FIXTURES_REQUIRED bench_micro_json LABELS "tier1" TIMEOUT 60)
endif()
