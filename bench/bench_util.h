// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary reproduces one experiment from DESIGN.md §4 and prints a
// fixed-width table plus a short interpretation. The binaries run with no
// required arguments (so `for b in build/bench/*; do $b; done` regenerates
// every experiment) but honor STREAMKC_BENCH_SCALE=small for quicker smoke
// runs, and `--metrics-out FILE|-` (or STREAMKC_BENCH_METRICS_OUT) to dump
// the metrics-registry snapshot — space gauges included — as JSON after the
// experiment.

#ifndef STREAMKC_BENCH_BENCH_UTIL_H_
#define STREAMKC_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace streamkc::bench {

inline bool SmallScale() {
  const char* env = std::getenv("STREAMKC_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "small") == 0;
}

// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = 0;
    for (size_t w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// Resolves the bench's metrics sink: `--metrics-out FILE` on the command
// line, else STREAMKC_BENCH_METRICS_OUT, else "" (disabled). An unwritable
// sink fails the run HERE, before the experiment burns minutes — silently
// dropping the dump at the end (the old behavior) lost the data the run
// existed to produce.
inline std::string MetricsOutPath(int argc, char** argv) {
  std::string path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) path = argv[i + 1];
  }
  if (path.empty()) {
    const char* env = std::getenv("STREAMKC_BENCH_METRICS_OUT");
    path = env != nullptr ? env : "";
  }
  if (!path.empty() && path != "-") {
    // Append-mode probe: verifies writability without truncating whatever
    // is there now (the real dump overwrites it later).
    FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --metrics-out %s\n",
                   path.c_str());
      std::exit(2);
    }
    std::fclose(f);
  }
  return path;
}

// Writes the process-wide registry snapshot as JSON to `path` ("-" =
// stdout); no-op when `path` is empty. Exits nonzero if the sink became
// unwritable since the MetricsOutPath probe.
inline void DumpMetricsJson(const std::string& path) {
  if (path.empty()) return;
  std::string json = ExportJson(MetricsRegistry::Global().Snapshot());
  if (path == "-") {
    std::printf("%s\n", json.c_str());
    return;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", json.c_str());
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "bench: error flushing %s\n", path.c_str());
    std::exit(1);
  }
}

// Resolves the bench-baseline sink: `--bench-out FILE` on the command line,
// else STREAMKC_BENCH_OUT, else "" (disabled). Same fail-fast writability
// probe as MetricsOutPath — a baseline run that cannot land its JSON must
// die before the experiment, not after.
inline std::string BenchOutPath(int argc, char** argv) {
  std::string path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-out") == 0) path = argv[i + 1];
  }
  if (path.empty()) {
    const char* env = std::getenv("STREAMKC_BENCH_OUT");
    path = env != nullptr ? env : "";
  }
  if (!path.empty() && path != "-") {
    FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --bench-out %s\n",
                   path.c_str());
      std::exit(2);
    }
    std::fclose(f);
  }
  return path;
}

// Machine-readable benchmark baseline: the BENCH_*.json contract consumed by
// tools/compare_bench.py. Shape is deliberately flat — `config` pins the
// workload (edge counts, batch sizes), `metrics` holds the measured numbers —
// so the comparator can hard-fail on shape drift (a metric renamed or
// dropped) while treating the values themselves with noise tolerance.
// Insertion order is preserved: diffs of committed baselines stay readable.
class BenchReport {
 public:
  // `bench` names the binary ("runtime"); `scale` records the workload size
  // class ("small"/"full") so the comparator never compares across scales.
  BenchReport(std::string bench, std::string scale)
      : bench_(std::move(bench)), scale_(std::move(scale)) {}

  void SetConfig(const std::string& key, double value) {
    config_.emplace_back(key, value);
  }
  void SetMetric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }
  void SetNote(std::string note) { note_ = std::move(note); }

  // Writes the report ("-" = stdout); no-op when `path` is empty.
  void Write(const std::string& path) const {
    if (path.empty()) return;
    std::string json = ToJson();
    if (path == "-") {
      std::printf("%s\n", json.c_str());
      return;
    }
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "%s\n", json.c_str());
    if (std::fclose(f) != 0) {
      std::fprintf(stderr, "bench: error flushing %s\n", path.c_str());
      std::exit(1);
    }
    std::printf("bench baseline written: %s\n", path.c_str());
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"bench\": \"" + bench_ + "\",\n";
    out += "  \"scale\": \"" + scale_ + "\",\n";
    if (!note_.empty()) out += "  \"note\": \"" + note_ + "\",\n";
    out += "  \"config\": {\n" + Section(config_) + "  },\n";
    out += "  \"metrics\": {\n" + Section(metrics_) + "  }\n";
    out += "}";
    return out;
  }

 private:
  static std::string Section(
      const std::vector<std::pair<std::string, double>>& kv) {
    std::string out;
    for (size_t i = 0; i < kv.size(); ++i) {
      out += "    \"" + kv[i].first + "\": " + Fmt("%.10g", kv[i].second);
      out += i + 1 < kv.size() ? ",\n" : "\n";
    }
    return out;
  }

  std::string bench_;
  std::string scale_;
  std::string note_;
  std::vector<std::pair<std::string, double>> config_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace streamkc::bench

#endif  // STREAMKC_BENCH_BENCH_UTIL_H_
