// Quickstart: estimate and report an approximate Max k-Cover over an
// edge-arrival stream in a few lines.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface: build (or receive) a stream of
// (set, element) pairs in ANY order, feed it once through the estimator and
// the reporter, and compare against the offline greedy baseline.

#include <cstdio>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "offline/greedy.h"
#include "setsys/generators.h"

using namespace streamkc;

int main() {
  // A synthetic instance: m = 2048 sets over n = 4096 elements, with a
  // planted optimal 32-cover of 2048 elements. In a real application the
  // stream would come from disk or the network; any arrival order works.
  const uint64_t m = 2048, n = 4096, k = 32;
  GeneratedInstance inst = PlantedCover(m, n, k, /*coverage_fraction=*/0.5,
                                        /*noise_set_size=*/6, /*seed=*/1);
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 7);

  // --- 1. Estimate the optimal coverage size to factor alpha. -------------
  const double alpha = 8;
  EstimateMaxCover::Config est_config;
  est_config.params = Params::Practical(m, n, k, alpha);
  est_config.seed = 42;
  EstimateMaxCover estimator(est_config);

  Edge e;
  while (stream.Next(&e)) estimator.Process(e);  // one pass, tiny memory

  EstimateOutcome estimate = estimator.Finalize();
  std::printf("coverage estimate : %.0f  (subroutine: %s)\n",
              estimate.estimate, estimate.source.c_str());
  std::printf("sketch memory     : %zu KiB for a %llu-edge stream\n",
              estimator.MemoryBytes() >> 10,
              static_cast<unsigned long long>(stream.SizeHint()));

  // --- 2. Report an actual k-cover (set ids), same pass structure. --------
  ReportMaxCover::Config rep_config;
  rep_config.params = est_config.params;
  rep_config.seed = 43;
  ReportMaxCover reporter(rep_config);
  stream.Reset();
  while (stream.Next(&e)) reporter.Process(e);

  MaxCoverSolution solution = reporter.Finalize();
  uint64_t true_coverage = inst.system.CoverageOf(solution.sets);
  std::printf("reported solution : %zu sets, true coverage %llu\n",
              solution.sets.size(),
              static_cast<unsigned long long>(true_coverage));

  // --- 3. Ground truth for comparison (offline, full memory). -------------
  CoverSolution greedy = LazyGreedyMaxCover(inst.system, k);
  std::printf("offline greedy    : coverage %llu (needs the whole input)\n",
              static_cast<unsigned long long>(greedy.coverage));
  std::printf("planted optimum   : coverage %llu\n",
              static_cast<unsigned long long>(inst.planted_coverage));
  std::printf("achieved factor   : %.2f (target alpha = %.0f)\n",
              static_cast<double>(greedy.coverage) /
                  static_cast<double>(true_coverage),
              alpha);
  return 0;
}
