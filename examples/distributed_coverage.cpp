// Distributed Max k-Cover via mergeable sketches.
//
//   build/examples/distributed_coverage
//
// Scenario: the (set, element) log is sharded across 4 workers (e.g. 4
// Kafka partitions — edges land on arbitrary workers in arbitrary order).
// Each worker runs the Õ(m)-space sketch-greedy substrate over its shard
// only; the coordinator merges the workers' states (all sketches in
// streamkc are mergeable) and solves on the union — one communication
// round, no raw data movement. The example validates the merged answer
// against a single-machine run and against offline greedy.

#include <cstdio>
#include <vector>

#include "offline/greedy.h"
#include "offline/sketch_greedy.h"
#include "setsys/generators.h"

using namespace streamkc;

int main() {
  const uint64_t m = 4096, n = 8192, k = 32;
  const int kWorkers = 4;
  GeneratedInstance inst = PlantedCover(m, n, k, 0.5, 6, 3);
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 11);

  // Shard the log round-robin across workers (any partitioning works).
  SketchGreedy::Config config{.k = k, .num_mins = 64, .max_sets = 1u << 20,
                              .seed = 77};
  std::vector<SketchGreedy> workers;
  for (int w = 0; w < kWorkers; ++w) workers.emplace_back(config);
  for (size_t i = 0; i < edges.size(); ++i) {
    workers[i % kWorkers].Process(edges[i]);
  }
  size_t per_worker_bytes = workers[0].MemoryBytes();

  // Coordinator: one merge round.
  SketchGreedy merged(config);
  for (SketchGreedy& w : workers) merged.Merge(w);
  CoverSolution distributed = merged.Finalize();
  uint64_t distributed_cov = inst.system.CoverageOf(distributed.sets);

  // Reference: the same algorithm on the unsharded stream.
  SketchGreedy single(config);
  for (const Edge& e : edges) single.Process(e);
  CoverSolution central = single.Finalize();
  uint64_t central_cov = inst.system.CoverageOf(central.sets);

  CoverSolution greedy = LazyGreedyMaxCover(inst.system, k);

  std::printf("stream: %zu edges sharded over %d workers\n", edges.size(),
              kWorkers);
  std::printf("per-worker sketch : %zu KiB\n", per_worker_bytes >> 10);
  std::printf("distributed pick  : %zu sets, true coverage %llu\n",
              distributed.sets.size(),
              static_cast<unsigned long long>(distributed_cov));
  std::printf("single-machine    : %zu sets, true coverage %llu\n",
              central.sets.size(),
              static_cast<unsigned long long>(central_cov));
  std::printf("offline greedy    : coverage %llu\n",
              static_cast<unsigned long long>(greedy.coverage));
  std::printf("distributed/greedy: %.2f (constant-factor regime)\n",
              static_cast<double>(distributed_cov) /
                  static_cast<double>(greedy.coverage));
  return 0;
}
