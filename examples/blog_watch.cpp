// Multi-topic blog watch (the application that motivated the first streaming
// Max k-Cover paper, Saha & Getoor 2009 [37]).
//
//   build/examples/blog_watch
//
// Scenario: posts stream in from a crawler as (blog, topic) pairs — a blog's
// topics do NOT arrive contiguously (each new post contributes one pair), so
// this is exactly the paper's edge-arrival model. The task: pick k blogs to
// follow that together cover the most topics.
//
// We synthesize a blogosphere with Zipf topic popularity, a handful of
// broad "aggregator" blogs and many niche ones, stream it in crawl
// (random) order, and report which blogs to follow.

#include <cstdio>
#include <vector>

#include "core/report_max_cover.h"
#include "offline/greedy.h"
#include "setsys/set_system.h"
#include "util/random.h"

using namespace streamkc;

namespace {

// Builds the blogosphere: `aggregators` broad blogs covering many topics,
// the rest niche. Returns the ground-truth set system (blogs = sets,
// topics = elements).
SetSystem MakeBlogosphere(uint64_t num_blogs, uint64_t num_topics,
                          uint64_t aggregators, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ElementId>> blogs(num_blogs);
  for (uint64_t b = 0; b < num_blogs; ++b) {
    uint64_t breadth = (b < aggregators) ? num_topics / 12 : 4;
    for (uint64_t p = 0; p < breadth; ++p) {
      // Zipf-ish topic choice: popular topics get written about more.
      double u = rng.UniformDouble();
      auto topic = static_cast<ElementId>(
          static_cast<double>(num_topics) * u * u);
      if (topic >= num_topics) topic = num_topics - 1;
      blogs[b].push_back(topic);
    }
  }
  return SetSystem(num_topics, std::move(blogs));
}

}  // namespace

int main() {
  const uint64_t num_blogs = 4096, num_topics = 2048, k = 24;
  const double alpha = 8;
  SetSystem blogosphere = MakeBlogosphere(num_blogs, num_topics, 40, 2026);

  std::printf("blogosphere: %llu blogs, %llu topics, %llu (blog, topic) pairs\n",
              static_cast<unsigned long long>(num_blogs),
              static_cast<unsigned long long>(num_topics),
              static_cast<unsigned long long>(blogosphere.TotalEdges()));

  // Crawl order: pairs arrive as posts are discovered — fully interleaved.
  VectorEdgeStream crawl = blogosphere.MakeStream(ArrivalOrder::kRandom, 99);

  ReportMaxCover::Config config;
  config.params = Params::Practical(num_blogs, num_topics, k, alpha);
  config.seed = 4;
  ReportMaxCover reporter(config);

  Edge pair;
  while (crawl.Next(&pair)) reporter.Process(pair);

  MaxCoverSolution pick = reporter.Finalize();
  uint64_t covered = blogosphere.CoverageOf(pick.sets);
  std::printf("follow these %zu blogs (of %llu): ", pick.sets.size(),
              static_cast<unsigned long long>(num_blogs));
  for (SetId b : pick.sets) std::printf("%llu ", static_cast<unsigned long long>(b));
  std::printf("\n");
  std::printf("topics covered    : %llu of %llu (%.0f%%)\n",
              static_cast<unsigned long long>(covered),
              static_cast<unsigned long long>(num_topics),
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(num_topics));

  CoverSolution greedy = LazyGreedyMaxCover(blogosphere, k);
  std::printf("offline greedy    : %llu topics — streaming achieved %.2fx of "
              "it using %zu KiB\n",
              static_cast<unsigned long long>(greedy.coverage),
              static_cast<double>(covered) /
                  static_cast<double>(greedy.coverage),
              reporter.MemoryBytes() >> 10);
  return 0;
}
