// The Section-5 communication game, playable: why α-approximation costs
// Ω(m/α²) space.
//
//   build/examples/dsj_game
//
// r players secretly hold subsets of m items, promised either pairwise
// disjoint (Yes) or sharing exactly one common item (No). Their data is
// reduced to a Max 1-Cover edge stream (Claims 5.3/5.4: OPT is 1 vs r), and
// a single-pass L2 sketch of size Θ(m/r²) plays the referee. The example
// prints the verdicts at a healthy budget and at a starved one.

#include <cstdio>

#include "core/dsj_protocol.h"
#include "setsys/dsj_instance.h"

using namespace streamkc;

namespace {

void Play(uint64_t m, uint64_t r, bool no_case, double space_factor,
          uint64_t seed) {
  DsjInstance game = MakeDsjInstance(m, r, no_case, seed);
  DsjDistinguisher::Config config;
  config.num_items = m;
  config.num_players = r;
  config.space_factor = space_factor;
  config.seed = seed * 7 + 1;
  DsjDistinguisher referee(config);
  for (const Edge& e : DsjToMaxCoverEdges(game)) referee.Process(e);
  DsjDistinguisher::Verdict v = referee.Finalize();
  std::printf(
      "  truth=%-3s budget=%5.2fx (%4zu KiB)  verdict=%-3s  max|S_j|~%.1f%s\n",
      no_case ? "No" : "Yes", space_factor, referee.MemoryBytes() >> 10,
      v.says_no ? "No" : "Yes", v.max_estimate,
      (v.says_no == no_case) ? "" : "   <-- WRONG");
}

}  // namespace

int main() {
  const uint64_t m = 1 << 14;  // items
  const uint64_t r = 16;       // players = the approximation factor at stake
  std::printf("r-player set disjointness, m = %llu items, r = %llu players\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(r));
  std::printf("reduced Max 1-Cover optimum: %llu (No) vs 1 (Yes)\n\n",
              static_cast<unsigned long long>(r));

  std::printf("with the Theta(m/r^2) budget the referee is reliable:\n");
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Play(m, r, /*no_case=*/true, 1.0, seed);
    Play(m, r, /*no_case=*/false, 1.0, seed);
  }

  std::printf("\nstarved to 1/64 of the budget it degrades toward guessing:\n");
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Play(m, r, /*no_case=*/true, 1.0 / 64, seed);
    Play(m, r, /*no_case=*/false, 1.0 / 64, seed);
  }

  std::printf(
      "\nTheorem 3.3 turns this into the matching lower bound: any\n"
      "single-pass algorithm that alpha-approximates Max k-Cover could\n"
      "referee this game, so it must use Omega(m/alpha^2) space.\n");
  return 0;
}
