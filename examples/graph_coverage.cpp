// Influence-style vertex coverage over a directed graph — footnote 2 of the
// paper: when sets are vertex neighborhoods, the input representation can
// force non-contiguous arrival, which is why the general edge-arrival model
// matters.
//
//   build/examples/graph_coverage
//
// Scenario: pick k accounts in a follow graph whose out-neighborhoods reach
// the most users. The graph is stored BY IN-EDGES (each record is "u is
// followed by v" = (set v, element u)), so the incidences of any one set are
// scattered across the whole stream: a set-arrival algorithm cannot run at
// all, while the sketch pipeline streams it directly. We compare estimation
// quality across several arrival orders to show order-obliviousness.

#include <cstdio>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "offline/greedy.h"
#include "setsys/generators.h"

using namespace streamkc;

int main() {
  const uint64_t vertices = 4096;
  const double avg_degree = 24;
  const uint64_t k = 64;
  const double alpha = 8;

  GeneratedInstance graph = GraphNeighborhoods(vertices, avg_degree, 11);
  std::printf("follow graph: %llu accounts, ~%.0f follows each, %llu edges\n",
              static_cast<unsigned long long>(vertices), avg_degree,
              static_cast<unsigned long long>(graph.system.TotalEdges()));

  CoverSolution greedy = LazyGreedyMaxCover(graph.system, k);
  std::printf("offline greedy reach (full memory): %llu accounts\n\n",
              static_cast<unsigned long long>(greedy.coverage));

  // The same sketch, fed in three different physical layouts of the graph.
  for (ArrivalOrder order :
       {ArrivalOrder::kElementContiguous,  // stored by in-edges (footnote 2)
        ArrivalOrder::kSetContiguous,      // stored by out-edges
        ArrivalOrder::kRandom}) {          // arbitrary crawl order
    EstimateMaxCover::Config config;
    config.params = Params::Practical(vertices, vertices, k, alpha);
    config.seed = 31;
    EstimateMaxCover estimator(config);
    VectorEdgeStream stream = graph.system.MakeStream(order, 5);
    Edge e;
    while (stream.Next(&e)) estimator.Process(e);
    EstimateOutcome out = estimator.Finalize();
    std::printf("%-19s estimate %6.0f  (factor %.2f vs greedy, %zu KiB)\n",
                ArrivalOrderName(order).c_str(), out.estimate,
                static_cast<double>(greedy.coverage) / out.estimate,
                estimator.MemoryBytes() >> 10);
  }

  // And report which accounts to pick, from the in-edge layout.
  ReportMaxCover::Config config;
  config.params = Params::Practical(vertices, vertices, k, alpha);
  config.seed = 32;
  ReportMaxCover reporter(config);
  VectorEdgeStream stream =
      graph.system.MakeStream(ArrivalOrder::kElementContiguous, 5);
  Edge e;
  while (stream.Next(&e)) reporter.Process(e);
  MaxCoverSolution pick = reporter.Finalize();
  std::printf("\npicked %zu accounts reaching %llu users (greedy reaches %llu)\n",
              pick.sets.size(),
              static_cast<unsigned long long>(
                  graph.system.CoverageOf(pick.sets)),
              static_cast<unsigned long long>(greedy.coverage));
  return 0;
}
